// Package core implements class-based delta-encoding — the paper's primary
// contribution. The Engine orchestrates the grouping mechanism (Section
// III), the randomized base-file selection (Section IV), the anonymization
// process (Section V), and the Vdelta codec into the request-processing
// pipeline a delta-server runs:
//
//  1. The request's URL is partitioned (server-part / hint-part / rest) and
//     grouped into a class; the class's single base-file serves every
//     member document.
//  2. The current document snapshot (fetched from the adjacent web-server)
//     is delta-encoded against the base-file the client holds; the (gzipped)
//     delta is shipped instead of the full document.
//  3. Every document feeds the class's base-file selector and the pending
//     anonymization process. Until a class's base-file has been anonymized
//     against N distinct users it is never distributed, and the class is
//     served full documents.
//
// The Engine also implements the classless baseline (one base-file per
// document, or per document per user when personalization is modeled),
// whose server-side storage blow-up motivates the class-based scheme.
package core

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/classify"
	"cbde/internal/deltacache"
	"cbde/internal/deltahttp"
	"cbde/internal/gzipx"
	"cbde/internal/metrics"
	"cbde/internal/obs"
	"cbde/internal/store"
	"cbde/internal/urlparts"
	"cbde/internal/vcdiff"
	"cbde/internal/vdelta"
)

// Mode selects how the engine maps documents to base-files.
type Mode int

const (
	// ModeClassBased is the paper's scheme: one base-file per class.
	ModeClassBased Mode = iota + 1
	// ModeClassless is the basic delta-encoding baseline: one base-file
	// per document URL.
	ModeClassless
	// ModeClasslessPerUser models personalized documents under the basic
	// scheme: one base-file per (URL, user) pair — the storage blow-up of
	// Section II.
	ModeClasslessPerUser
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeClassBased:
		return "class-based"
	case ModeClassless:
		return "classless"
	case ModeClasslessPerUser:
		return "classless-per-user"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parametrizes an Engine. The zero value selects class-based mode
// with the paper's default parameters.
type Config struct {
	// Mode selects class-based operation or a classless baseline.
	// Default ModeClassBased.
	Mode Mode
	// Rules partitions URLs per site. Default: the Table I heuristic only.
	Rules *urlparts.RuleSet
	// Classify configures the grouping mechanism (Section III).
	Classify classify.Config
	// Selector configures per-class base-file selection (Section IV).
	Selector basefile.Config
	// Anon configures base-file anonymization (Section V).
	Anon anonymize.Config
	// DisableAnonymization turns the anonymization stage off: base-files
	// are distributed immediately. The classless baselines imply this
	// (their base-files are private to a URL or user).
	DisableAnonymization bool
	// Codec configures the Vdelta coder.
	Codec []vdelta.Option
	// GzipDeltas compresses deltas with gzip before shipping, as in the
	// paper's experiments. Default true; set GzipOff to disable.
	GzipOff bool
	// MaxDeltaRatio triggers a basic-rebase when the (uncompressed) delta
	// exceeds this fraction of the document size. Default 0.5.
	MaxDeltaRatio float64
	// KeepBaseVersions is how many distributed base-file versions per class
	// stay available for clients that hold an older version. Default 2.
	// GraphDepth supersedes it as the retention bound when set; it remains
	// as the default depth for configurations that predate the graph.
	KeepBaseVersions int
	// GraphDepth bounds the per-class version graph: up to GraphDepth
	// recent base versions stay resident, linked by delta edges between
	// adjacent ones, so a client on any retained version is served a
	// direct delta or a composed chain of cached edges instead of a full
	// response. Depth 1 keeps only the current version (no edges, the
	// pre-graph behavior at K=1). Default: KeepBaseVersions.
	GraphDepth int
	// MemBudget caps resident class storage — installed base-file versions,
	// selector-held documents, and codec indexes — in bytes. Over budget,
	// the engine first prunes redundant per-class payload (old base
	// versions, sampled candidates), then evicts whole classes under a
	// CLOCK policy; an evicted class transparently serves full responses
	// and re-warms from traffic, never erroring. 0 (default) disables
	// governance: classes are retained forever, as before.
	MemBudget int64
	// SpillDir enables the disk tier: budget-evicted classes are demoted
	// to compact binary blobs in segment files under this directory and
	// faulted back in — served as deltas again — when traffic returns.
	// A restart with a populated spill dir recovers the class index by
	// scanning segment headers; bodies fault in lazily. Empty (default)
	// disables the tier: eviction drops bytes and classes re-warm from
	// traffic.
	SpillDir string
	// DiskBudget caps the spill tier's on-disk bytes; over budget, oldest
	// segments are deleted and their classes degrade like plain evictions.
	// 0 (default) leaves the tier unbounded. Requires SpillDir.
	DiskBudget int64
	// SpillSegmentBytes overrides the spill segment rotation size
	// (default 4 MiB); tests use small values to force rotation.
	SpillSegmentBytes int64
	// DeltaCacheOff disables delta memoization. By default the engine
	// memoizes each encoded (class, fromVersion, document, format) delta
	// with singleflight coalescing (internal/deltacache), so repeated and
	// concurrent requests for the same delta share one encode and one
	// immutable payload. Cached bytes are charged to the store ledger and
	// reclaimed by budget maintenance.
	DeltaCacheOff bool
	// DeltaCacheEntries caps memoized deltas per class. Default 256.
	DeltaCacheEntries int
	// Tracing starts the engine with pipeline span tracing enabled (see
	// internal/obs). Default off; flip at runtime with SetTracing. Disabled
	// tracing costs one atomic load per request and zero allocations.
	Tracing bool
	// Now supplies time, for deterministic tests. Default time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Mode == 0 {
		c.Mode = ModeClassBased
	}
	if c.Rules == nil {
		c.Rules = urlparts.NewRuleSet()
	}
	if c.MaxDeltaRatio <= 0 || c.MaxDeltaRatio > 1 {
		c.MaxDeltaRatio = 0.5
	}
	if c.KeepBaseVersions <= 0 {
		c.KeepBaseVersions = 2
	}
	if c.GraphDepth <= 0 {
		c.GraphDepth = c.KeepBaseVersions
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Mode != ModeClassBased {
		c.DisableAnonymization = true
		// Classless base-files are previous snapshots of the same document;
		// there is nothing to sample across.
		c.Selector.SampleProb = -1
	}
	return c
}

// Format selects the delta wire format for a response.
type Format int

const (
	// FormatVdelta is the internal vdelta instruction stream (default).
	FormatVdelta Format = iota + 1
	// FormatVCDIFF is the RFC 3284 interchange format (reference [12]).
	FormatVCDIFF
	// FormatVdeltaChain is a framed sequence of vdelta deltas the client
	// applies in order from the base version it holds: each cached edge
	// delta rewrites one retained version into the next, and the final
	// segment rewrites the current base into the document. Produced by the
	// version graph for lagging clients; never requested directly.
	FormatVdeltaChain
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case FormatVdelta:
		return "vdelta"
	case FormatVCDIFF:
		return "vcdiff"
	case FormatVdeltaChain:
		return "vdelta-chain"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// HeldBase identifies one base-file a client holds in its cache.
type HeldBase struct {
	ClassID string
	Version int
}

// Request is one client request together with the current document snapshot
// the delta-server fetched from the web-server.
type Request struct {
	URL    string // full request URL
	UserID string // requesting user (cookie-derived in the paper)
	Doc    []byte // current snapshot of the dynamic document

	// Held lists the base-files the client holds for this server. The
	// client cannot know which class an unseen URL belongs to, so it
	// advertises everything it has; the engine picks the entry matching
	// the document's class, if any. Deltas are only sent against a
	// base-file the client holds.
	Held []HeldBase

	// HaveClassID and HaveVersion are a single-entry convenience
	// equivalent to one Held element.
	HaveClassID string
	HaveVersion int

	// TraceCtx is the distributed trace context the request arrived with
	// (or that the serving node minted). The zero value is fine; when set
	// and tracing is enabled, the finished Summary carries it and the
	// process-duration histogram records the trace ID as an exemplar.
	TraceCtx obs.TraceContext

	// Format selects the delta wire format (zero value: FormatVdelta).
	// Clients that implement RFC 3284 request FormatVCDIFF.
	Format Format
}

// forEachHeldVersion calls fn with every version of classID the client
// holds. It is a callback rather than a returned slice so the per-request
// hot path allocates nothing here.
func (r Request) forEachHeldVersion(classID string, fn func(v int)) {
	if r.HaveClassID == classID && r.HaveVersion > 0 {
		fn(r.HaveVersion)
	}
	for _, h := range r.Held {
		if h.ClassID == classID && h.Version > 0 {
			fn(h.Version)
		}
	}
}

// ResponseKind distinguishes full-document from delta responses.
type ResponseKind int

const (
	// KindFull means the response carries the complete document.
	KindFull ResponseKind = iota + 1
	// KindDelta means the response carries a delta against the base-file
	// identified by ClassID/BaseVersion.
	KindDelta
)

// String implements fmt.Stringer.
func (k ResponseKind) String() string {
	switch k {
	case KindFull:
		return "full"
	case KindDelta:
		return "delta"
	default:
		return fmt.Sprintf("ResponseKind(%d)", int(k))
	}
}

// Response is the engine's decision for one request.
type Response struct {
	Kind ResponseKind
	// ClassID identifies the document's class (empty while ungrouped in
	// classless modes before the first base exists).
	ClassID string
	// BaseVersion is the base-file version the delta was encoded against
	// (KindDelta), or 0.
	BaseVersion int
	// LatestVersion is the newest distributable base-file version for the
	// class; clients holding older versions should refresh.
	LatestVersion int
	// Payload is the delta (gzipped unless GzipOff) for KindDelta, nil for
	// KindFull (the caller already holds Doc).
	Payload []byte
	// Gzipped reports whether Payload is gzip-compressed.
	Gzipped bool
	// Format is the wire format of Payload for KindDelta.
	Format Format
	// BasicRebase reports that this request triggered a basic-rebase
	// because its delta came out too large.
	BasicRebase bool
	// ChainLen is the number of segments in a FormatVdeltaChain payload
	// (edge deltas plus the tip delta); 0 for every other format.
	ChainLen int
	// Trace is the request's pipeline span summary, non-nil only when the
	// engine's tracer is enabled. The delta-server folds it into its
	// structured request log.
	Trace *obs.Summary
}

// WireSize returns the number of payload bytes this response puts on the
// client-facing network: the delta size, or the full document size.
func (r Response) WireSize(docLen int) int {
	if r.Kind == KindDelta {
		return len(r.Payload)
	}
	return docLen
}

// ErrNoDocument is returned by Process for requests without a document.
var ErrNoDocument = errors.New("core: request has no document snapshot")

// baseVersion is one distributable base-file version. The bytes are
// immutable once installed, so readers may hold a reference across lock
// boundaries; the vdelta codec index is built lazily — at most once, via
// once — by the first vdelta encode against this version, outside any
// class lock.
type baseVersion struct {
	bytes []byte
	once  sync.Once
	index *vdelta.Index

	// cs owns the version for byte accounting; nil in versions created by
	// tests that bypass installBase.
	cs *classState
	// indexBytes is the accounted size of the lazily built index, and
	// released marks the version dropped from its class. The index build
	// runs outside all class locks, so it can race a concurrent release;
	// the Swap(0) protocol below guarantees exactly one side subtracts the
	// index bytes from the ledger.
	indexBytes atomic.Int64
	released   atomic.Bool
}

// vdeltaIndex returns the version's codec index, building it on first use.
// Safe to call concurrently and without holding any class lock.
func (bv *baseVersion) vdeltaIndex(coder *vdelta.Coder) *vdelta.Index {
	bv.once.Do(func() {
		bv.index = coder.NewIndex(bv.bytes)
		if bv.cs == nil {
			return
		}
		sz := bv.index.SizeBytes()
		bv.cs.addIndex(sz)
		bv.indexBytes.Store(sz)
		if bv.released.Load() {
			// The version was released while we were building: whoever wins
			// the Swap undoes the accounting; the index itself is garbage
			// the moment the running encode finishes with it.
			if f := bv.indexBytes.Swap(0); f != 0 {
				bv.cs.addIndex(-f)
			}
		}
	})
	return bv.index
}

// release returns the version's accounted bytes to the ledger when it is
// dropped from its class. Callers hold cs.mu; safe against a concurrent
// index build (see indexBytes). Returns the bytes it subtracted.
func (bv *baseVersion) release() int64 {
	if bv.cs == nil {
		return 0
	}
	freed := int64(len(bv.bytes))
	bv.cs.addBase(-freed)
	bv.released.Store(true)
	if f := bv.indexBytes.Swap(0); f != 0 {
		bv.cs.addIndex(-f)
		freed += f
	}
	return freed
}

// classState is the engine's per-class serving state.
//
// Lock hierarchy (see DESIGN.md, "Concurrency model"): shard map lock →
// classState.mu → selector/class locks. Shard locks guard only the class
// table itself and are never held while taking cs.mu. The expensive vdelta
// encode runs with no class lock held at all, against an immutable
// baseVersion snapshot.
type classState struct {
	mu sync.RWMutex

	class    *classify.Class // nil in classless modes
	id       string
	selector *basefile.Selector

	// Distributable (anonymized, for class-based mode) base-file versions.
	// bases[v] exists for the GraphDepth most recent versions; edges[v] is
	// the version graph's cached delta from retained version v to the next
	// retained version (see graph.go for the invariants).
	bases       map[int]*baseVersion
	edges       map[int]*versionEdge
	distVersion int       // newest distributable version; 0 = none yet
	installedAt time.Time // when distVersion was installed (zero = never)

	// anonProc anonymizes the selector's base at selectorVersion
	// anonSource; nil when idle or anonymization is disabled.
	anonProc   *anonymize.Process
	anonSource int

	// deltas memoizes the class's encoded deltas (nil when disabled). It
	// has its own lock, taken after cs.mu when both are needed; its
	// payloads are immutable and shared with responses by aliasing. Every
	// install, prune, evict, and anonymization-epoch bump purges it.
	deltas *deltacache.Cache

	// evicted marks the class degraded by budget maintenance: no resident
	// base, serving full responses until traffic re-warms it. evictions and
	// rewarms count the transitions. All three are guarded by mu.
	evicted   bool
	evictions int64
	rewarms   int64

	// spill is the engine's disk tier (nil when disabled). spilled is the
	// warm path's one-atomic-load hint that a spill record may exist for
	// this class; faultMu serializes fault-in so a flash crowd on a
	// spilled class triggers exactly one disk read + decode (singleflight
	// per class — waiters block on the leader's mutex and re-check the
	// flag). faultIns counts successful installs, guarded by mu.
	spill    *store.Tier
	spilled  atomic.Bool
	faultMu  sync.Mutex
	faultIns int64

	// res is the class's share of the engine accountant's ledger: every
	// byte delta is applied to both, so res.Total() is the class's resident
	// footprint and the global ledger stays the exact sum over classes.
	res  store.Accountant
	acct *store.Accountant // the engine's global ledger

	// ctr are the class's per-class serving counters, resolved from the
	// engine's labeled metric families once at creation so the request hot
	// path only touches atomics.
	ctr classCounters

	// gDirect, gComposed, and gFallback are the class's version-graph serve
	// counters: single-delta responses, composed-chain responses, and full
	// responses forced by the client's version aging out of the graph.
	gDirect   atomic.Int64
	gComposed atomic.Int64
	gFallback atomic.Int64
}

var _ store.Entry = (*classState)(nil)

// addBase and addIndex apply a byte delta to the class's ledger and the
// engine's global one. Candidate bytes flow through the selector's
// OnStoredBytes callback instead (see newClassState).
func (cs *classState) addBase(d int64) {
	cs.res.AddBase(d)
	cs.acct.AddBase(d)
}
func (cs *classState) addIndex(d int64) {
	cs.res.AddIndex(d)
	cs.acct.AddIndex(d)
}

// ResidentBytes implements store.Entry.
func (cs *classState) ResidentBytes() int64 { return cs.res.Total() }

// purgeDeltas invalidates the class's memoized deltas, returning their
// bytes to the ledger through the cache's accounting callback. Safe with
// or without cs.mu held (the cache has its own lock, ordered after cs.mu).
func (cs *classState) purgeDeltas() {
	if cs.deltas != nil {
		cs.deltas.Purge()
	}
}

// Prune implements store.Entry: drop every installed base version except
// the newest distributable one, plus the selector's sampled candidate
// documents. The class keeps serving deltas against its newest base;
// clients holding pruned versions fall back to full responses.
func (cs *classState) Prune() int64 {
	before := cs.res.Total()
	cs.mu.Lock()
	for v, bv := range cs.bases {
		if v != cs.distVersion {
			delete(cs.bases, v)
			bv.release()
		}
	}
	// With only the current version left there is nothing for an edge to
	// connect; the graph regrows from the next installs.
	cs.dropEdgesLocked()
	cs.selector.DropSamples()
	// Memoized deltas are derived data: the cheapest payload to shed and
	// to regrow, and some were encoded against the versions just dropped.
	cs.purgeDeltas()
	cs.mu.Unlock()
	if freed := before - cs.res.Total(); freed > 0 {
		return freed
	}
	return 0
}

// Evict implements store.Entry: release every resident byte — installed
// base versions, the selector's working base and samples — and mark the
// class degraded. The entry itself stays in the store so its identity,
// counters, and version numbering survive; it announces LatestVersion 0,
// serves full responses, and re-warms from the next requests. The selector
// version counter is preserved, so a re-warmed class never reuses a
// version number for different bytes.
func (cs *classState) Evict() int64 {
	before := cs.res.Total()
	cs.mu.Lock()
	// With the disk tier enabled, eviction is a demotion: capture the
	// class's spillable state before the payload is dropped. The captured
	// byte slices are immutable (every mutation path replaces, never
	// edits, them), so the record stays valid for the append below even
	// after the class is stripped.
	var rec *store.ClassRecord
	if cs.spill != nil {
		rec = cs.spillRecordLocked()
	}
	for v, bv := range cs.bases {
		delete(cs.bases, v)
		bv.release()
	}
	cs.dropEdgesLocked()
	cs.distVersion = 0
	cs.installedAt = time.Time{}
	cs.anonProc = nil
	cs.anonSource = 0
	if !cs.evicted {
		cs.evicted = true
		cs.evictions++
	}
	cs.selector.DropStored()
	cs.purgeDeltas()
	cs.mu.Unlock()
	if rec != nil {
		// Append outside cs.mu: the tier has its own lock and does disk
		// I/O. On failure the class simply degrades like a plain eviction
		// (the tier counts the error); the spilled flag flips only once
		// the record is durably indexed.
		if err := cs.spill.Append(*rec); err == nil {
			cs.spilled.Store(true)
		}
	}
	if freed := before - cs.res.Total(); freed > 0 {
		return freed
	}
	return 0
}

// classCounters is the per-class stats table's accumulating half; the
// computed half (base version/age, anonymization progress) is read live by
// ClassStats and the exposition collector.
type classCounters struct {
	requests     *metrics.Counter
	deltaHits    *metrics.Counter // delta responses served
	deltaMisses  *metrics.Counter // full responses served (no usable base)
	bytesIn      *metrics.Counter // document bytes entering from the origin
	bytesShipped *metrics.Counter // payload bytes leaving to clients
}

// hotCounters are the engine's per-request counters, resolved once at
// construction so the request path never takes the registry's name-lookup
// lock.
type hotCounters struct {
	requests       *metrics.Counter
	bytesDirect    *metrics.Counter
	responsesDelta *metrics.Counter
	bytesDelta     *metrics.Counter
	responsesFull  *metrics.Counter
	bytesFull      *metrics.Counter
	classesCreated *metrics.Counter
	classifyProbes *metrics.Counter
	rebaseGroup    *metrics.Counter
	rebaseBasic    *metrics.Counter
	anonStarted    *metrics.Counter
	anonCompleted  *metrics.Counter
	basesInstalled *metrics.Counter
	rewarms        *metrics.Counter
	memoHits       *metrics.Counter // memoized delta served without encoding
	memoMisses     *metrics.Counter // cache misses (the request led the encode)
	memoCoalesced  *metrics.Counter // requests that waited on a leader's encode
	encodeRuns     *metrics.Counter // delta encodes actually executed
	faultIns       *metrics.Counter // spilled classes faulted in from disk
	graphDirect    *metrics.Counter // single-delta responses (graph depth 1 hop)
	graphComposed  *metrics.Counter // composed-chain responses
	graphFallback  *metrics.Counter // fulls forced by an aged-out client version
}

// Engine implements class-based delta-encoding. Create one with NewEngine;
// it is safe for concurrent use: requests to different classes proceed in
// parallel, and requests to the same class serialize only for bookkeeping,
// not for the delta encode itself.
type Engine struct {
	cfg      Config
	coder    *vdelta.Coder
	classify *classify.Manager

	// estimator is the light forward-only delta-size predictor that picks
	// between a direct encode and a composed chain for lagging clients.
	// Safe for concurrent use; its per-call state is pooled.
	estimator *vdelta.Estimator

	// cstore owns the class table (internal/store): an unbudgeted sharded
	// map, or — with Config.MemBudget — a budgeted store that prunes and
	// evicts classes when resident bytes exceed the budget. acct is its
	// byte ledger.
	cstore store.ClassStore
	acct   *store.Accountant

	// spill is the disk tier (Config.SpillDir); nil when disabled. The
	// warm path's only interaction with it is one nil check plus one
	// atomic flag load per request.
	spill *store.Tier

	// encBufs recycles the per-request delta scratch buffer (*encodeBuf).
	// Together with the coder's own pooled index state and gzipx's pooled
	// codec state, a steady-state delta response allocates only the payload
	// it returns. Response.Payload never aliases a pooled buffer: it is
	// either a fresh gzip output or a fresh copy of the scratch.
	encBufs sync.Pool

	// anonEpoch is the engine-wide anonymization epoch. Bumping it (see
	// BumpAnonEpoch) invalidates every memoized delta: cached payloads
	// embed anonymized base content, so a policy change must not let them
	// outlive it. docSeed keys the per-request document fingerprint used in
	// memo-cache keys.
	anonEpoch atomic.Uint64
	docSeed   maphash.Seed

	reg *metrics.Registry
	ctr hotCounters

	// tracer issues pipeline span traces (internal/obs); stageHist and
	// procHist are the pre-resolved histograms finished traces feed, so a
	// traced request never takes the registry's name-lookup lock.
	tracer    *obs.Tracer
	stageHist [obs.NumStages]*metrics.Histogram
	procHist  *metrics.Histogram
	chainHist *metrics.Histogram // segments per composed-chain response

	// Per-class labeled metric families; each classState resolves its
	// children once at creation.
	famClassRequests *metrics.CounterFamily
	famClassHits     *metrics.CounterFamily
	famClassMisses   *metrics.CounterFamily
	famClassBytesIn  *metrics.CounterFamily
	famClassShipped  *metrics.CounterFamily
}

// encodeBuf is the pooled per-request encode scratch. The uncompressed
// delta is built in buf and either gzipped into the response payload or
// copied out; buf itself always returns to the pool.
type encodeBuf struct {
	buf []byte
}

func (e *Engine) getEncodeBuf() *encodeBuf {
	if v := e.encBufs.Get(); v != nil {
		return v.(*encodeBuf)
	}
	return &encodeBuf{}
}

// NewEngine returns an Engine configured by cfg.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:       cfg,
		coder:     vdelta.NewCoder(cfg.Codec...),
		estimator: vdelta.NewEstimator(),
		reg:       metrics.NewRegistry(),
	}
	if cfg.MemBudget > 0 {
		e.cstore = store.NewBudgeted(cfg.MemBudget, cfg.Now)
	} else {
		e.cstore = store.NewMap()
	}
	e.acct = e.cstore.Accountant()
	if cfg.SpillDir != "" {
		tier, err := store.OpenTier(store.TierConfig{
			Dir:          cfg.SpillDir,
			MaxBytes:     cfg.DiskBudget,
			SegmentBytes: cfg.SpillSegmentBytes,
		})
		if err != nil {
			return nil, err
		}
		e.spill = tier
	}
	e.ctr = hotCounters{
		requests:       e.reg.Counter("requests"),
		bytesDirect:    e.reg.Counter("bytes.direct"),
		responsesDelta: e.reg.Counter("responses.delta"),
		bytesDelta:     e.reg.Counter("bytes.delta"),
		responsesFull:  e.reg.Counter("responses.full"),
		bytesFull:      e.reg.Counter("bytes.full"),
		classesCreated: e.reg.Counter("classes.created"),
		classifyProbes: e.reg.Counter("classify.probes"),
		rebaseGroup:    e.reg.Counter("rebase.group"),
		rebaseBasic:    e.reg.Counter("rebase.basic"),
		anonStarted:    e.reg.Counter("anon.started"),
		anonCompleted:  e.reg.Counter("anon.completed"),
		basesInstalled: e.reg.Counter("bases.installed"),
		rewarms:        e.reg.Counter("store.rewarms"),
		memoHits:       e.reg.Counter("memo.hits"),
		memoMisses:     e.reg.Counter("memo.misses"),
		memoCoalesced:  e.reg.Counter("memo.coalesced"),
		encodeRuns:     e.reg.Counter("encode.runs"),
		faultIns:       e.reg.Counter("store.faultins"),
		graphDirect:    e.reg.Counter("graph.direct"),
		graphComposed:  e.reg.Counter("graph.composed"),
		graphFallback:  e.reg.Counter("graph.fallback"),
	}
	e.docSeed = maphash.MakeSeed()
	if cfg.Mode == ModeClassBased {
		e.classify = classify.NewManager(cfg.Classify)
		// Recovered spill keys embed grouping-dependent sequence numbers;
		// import the sidecar SpillAll left behind so the same URLs and
		// users classify back to the spilled class IDs.
		if e.spill != nil {
			e.loadGrouping()
		}
	}

	// latencyBuckets spans the pipeline's realistic range: stages run tens
	// of microseconds to single-digit milliseconds (the paper's 6-8 ms
	// delta-generation budget sits mid-range), with headroom for contended
	// or pathological requests.
	latencyBuckets := []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
	}
	stageFam := e.reg.HistogramFamily("cbde_stage_duration_seconds",
		"Pipeline stage latency per traced request.", []string{"stage"}, latencyBuckets...)
	for _, st := range obs.Stages() {
		// Pre-create every stage child so the series exist from boot, even
		// before tracing is switched on.
		e.stageHist[st] = stageFam.With(st.String())
	}
	e.procHist = e.reg.Histogram("cbde_process_duration_seconds", latencyBuckets...)
	// Chain length is segments per composed response: the client's lag in
	// versions plus the tip delta. Buckets track the plausible graph depths.
	e.chainHist = e.reg.Histogram("cbde_graph_chain_length", 1, 2, 3, 4, 6, 8, 12, 16)

	e.famClassRequests = e.reg.CounterFamily("cbde_class_requests_total",
		"Requests routed to the class.", "class")
	e.famClassHits = e.reg.CounterFamily("cbde_class_delta_hits_total",
		"Delta responses served for the class.", "class")
	e.famClassMisses = e.reg.CounterFamily("cbde_class_delta_misses_total",
		"Full responses served for the class (no usable base-file).", "class")
	e.famClassBytesIn = e.reg.CounterFamily("cbde_class_bytes_in_total",
		"Document bytes fetched from the origin for the class.", "class")
	e.famClassShipped = e.reg.CounterFamily("cbde_class_bytes_shipped_total",
		"Payload bytes shipped to clients for the class.", "class")
	e.reg.RegisterCollector(e.collect)

	e.tracer = obs.New(nil)
	e.tracer.SetEnabled(cfg.Tracing)
	return e, nil
}

// Metrics exposes the engine's metrics registry.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// SetTracing switches pipeline span tracing on or off at runtime.
func (e *Engine) SetTracing(enabled bool) { e.tracer.SetEnabled(enabled) }

// TracingEnabled reports whether pipeline span tracing is on.
func (e *Engine) TracingEnabled() bool { return e.tracer.Enabled() }

// newClassState builds a classState wired to the engine's store ledger and
// labeled metric families. Only the store's GetOrCreate calls it, so it
// runs exactly once per class key.
func (e *Engine) newClassState(key string, class *classify.Class) *classState {
	cs := &classState{
		id:    key,
		class: class,
		acct:  e.acct,
		spill: e.spill,
		bases: make(map[int]*baseVersion),
		edges: make(map[int]*versionEdge),
		ctr: classCounters{
			requests:     e.famClassRequests.With(key),
			deltaHits:    e.famClassHits.With(key),
			deltaMisses:  e.famClassMisses.With(key),
			bytesIn:      e.famClassBytesIn.With(key),
			bytesShipped: e.famClassShipped.With(key),
		},
	}
	// The selector reports every resident-byte change of its working base
	// and sample stores; the callback runs under the selector's lock and
	// touches only atomics.
	selCfg := e.cfg.Selector
	selCfg.OnStoredBytes = func(d int) {
		cs.res.AddCand(int64(d))
		e.acct.AddCand(int64(d))
	}
	// Async sample admissions install candidate bytes after the sampling
	// request's Maintain has returned, so each admission schedules its own
	// budget pass once the selector lock is released.
	selCfg.AfterAsyncAdmit = func() { e.cstore.Maintain() }
	cs.selector = basefile.NewSelector(selCfg)
	// A class created after a restart may have a record waiting in the
	// recovered spill index; flag it so its first request faults it in.
	// This is the slow (creation) path: one tier map lookup per class.
	if e.spill != nil && e.spill.Contains(key) {
		cs.spilled.Store(true)
	}
	if !e.cfg.DeltaCacheOff {
		// Retained payload bytes flow into the same dual ledger as base and
		// candidate bytes, so the budget governor sees and reclaims them.
		cs.deltas = deltacache.New(e.cfg.DeltaCacheEntries, func(d int64) {
			cs.res.AddDelta(d)
			e.acct.AddDelta(d)
		})
	}
	return cs
}

// state returns (creating if needed) the classState for key. The fast path
// is one store lookup and no allocations; the create closure is only built
// on the miss path.
func (e *Engine) state(key string, class *classify.Class) *classState {
	if ent, ok := e.cstore.Get(key); ok {
		return ent.(*classState)
	}
	ent, _ := e.cstore.GetOrCreate(key, func() store.Entry {
		return e.newClassState(key, class)
	})
	return ent.(*classState)
}

// lookup returns the classState for key, if it exists.
func (e *Engine) lookup(key string) (*classState, bool) {
	ent, ok := e.cstore.Get(key)
	if !ok {
		return nil, false
	}
	return ent.(*classState), true
}

// states snapshots every classState in the store.
func (e *Engine) states() []*classState {
	out := make([]*classState, 0, e.cstore.Len())
	e.cstore.ForEach(func(_ string, ent store.Entry) bool {
		out = append(out, ent.(*classState))
		return true
	})
	return out
}

// Process runs one request through the pipeline and decides what to send.
//
// The pipeline is split into a short mutation phase under the class write
// lock (selector observation, anonymization advance, base-file snapshot)
// and an unlocked encode phase. Concurrent requests to the same class
// therefore overlap on the expensive part — the 6-8 ms/delta encode that
// bounds the capacity experiment of Section VI-C.
func (e *Engine) Process(req Request) (Response, error) {
	if req.Doc == nil {
		return Response{}, ErrNoDocument
	}
	now := e.cfg.Now()
	// tr is nil when tracing is disabled; every tr method below is then a
	// no-op, so the untraced hot path pays one atomic load and no clock
	// reads or allocations.
	tr := e.tracer.StartCtx(req.TraceCtx)

	t0 := tr.Now()
	cs, err := e.route(req)
	if err != nil {
		tr.Discard()
		return Response{}, err
	}
	tr.Record(obs.StageRoute, t0, int64(len(req.Doc)))
	// Disk-tier fault-in: a spilled class is re-installed from its blob
	// before the mutation phase, so this very request is served as a
	// delta instead of a full response. The warm path pays one nil check
	// and one atomic load here; everything else lives behind the flag.
	if e.spill != nil && cs.spilled.Load() {
		t0 = tr.Now()
		if n := e.faultIn(cs, now); n > 0 {
			tr.Record(obs.StageFaultIn, t0, n)
		}
	}
	// Accounting happens only after routing succeeds: an unroutable request
	// produces no response and must not inflate the capacity counters.
	e.ctr.requests.Inc()
	e.ctr.bytesDirect.Add(int64(len(req.Doc)))
	cs.ctr.requests.Inc()
	cs.ctr.bytesIn.Add(int64(len(req.Doc)))

	// Mutation phase: feed the document to the selector (Section IV), drive
	// the anonymization pipeline (Section V), and snapshot what the encode
	// needs.
	t0 = tr.Now()
	cs.mu.Lock()
	ev := cs.selector.ObserveTagged(req.Doc, req.UserID, now)
	if ev.GroupRebase {
		e.ctr.rebaseGroup.Inc()
	}
	tr.Record(obs.StageSelect, t0, 0)
	t0 = tr.Now()
	e.advanceAnonymization(cs, req, now)
	if !e.cfg.DisableAnonymization {
		tr.Record(obs.StageAnon, t0, 0)
	}
	t0 = tr.Now()
	snap := cs.snapshotLocked(req)
	cs.mu.Unlock()
	tr.Record(obs.StageSelect, t0, 0)

	resp := e.respond(cs, snap, req, now, tr)
	resp.ClassID = cs.id

	// Budget maintenance runs with no class locks held, after this
	// request's bytes are resident. At most one sweep runs at a time
	// (contenders skip; the sweeper re-checks the budget after releasing
	// the lock), so mid-flight resident bytes overshoot the budget by at
	// most the working size the in-flight requests admitted during the
	// sweep. Async sample admissions land after this call but schedule
	// their own pass (AfterAsyncAdmit), so once the last Maintain — from
	// any trigger — returns, the store is at or under budget.
	t0 = tr.Now()
	if freed := e.cstore.Maintain(); freed > 0 {
		tr.Record(obs.StageEvict, t0, freed)
	}

	if resp.Kind == KindDelta {
		e.ctr.responsesDelta.Inc()
		e.ctr.bytesDelta.Add(int64(len(resp.Payload)))
		cs.ctr.deltaHits.Inc()
		cs.ctr.bytesShipped.Add(int64(len(resp.Payload)))
	} else {
		e.ctr.responsesFull.Inc()
		e.ctr.bytesFull.Add(int64(len(req.Doc)))
		cs.ctr.deltaMisses.Inc()
		cs.ctr.bytesShipped.Add(int64(len(req.Doc)))
	}
	// Version-graph serve accounting: every delta is either one hop
	// (direct) or a composed chain; a full response counts as a graph
	// fallback only when the client's advertised version aged out.
	switch {
	case resp.Kind == KindDelta && resp.Format == FormatVdeltaChain:
		e.ctr.graphComposed.Inc()
		cs.gComposed.Add(1)
		if id := req.TraceCtx.ID; !id.IsZero() {
			e.chainHist.ObserveExemplar(float64(resp.ChainLen), id.Hi, id.Lo, now.Unix())
		} else {
			e.chainHist.Observe(float64(resp.ChainLen))
		}
	case resp.Kind == KindDelta:
		e.ctr.graphDirect.Inc()
		cs.gDirect.Add(1)
	case snap.heldStale:
		e.ctr.graphFallback.Inc()
		cs.gFallback.Add(1)
	}
	if sum := tr.Finish(); sum != nil {
		e.observeTrace(sum)
		resp.Trace = sum
	}
	return resp, nil
}

// observeTrace folds one finished trace into the per-stage latency
// histograms. Stages with no recorded cost are skipped, so e.g. the encode
// series reflects only requests that actually attempted a delta.
func (e *Engine) observeTrace(sum *obs.Summary) {
	// Requests that carried a distributed trace ID leave it as an exemplar
	// on the bucket their duration landed in, so an exposition p99 spike
	// links straight to a retrievable flight-recorder trace.
	if id := sum.Ctx.ID; !id.IsZero() {
		e.procHist.ObserveExemplar(sum.Total.Seconds(), id.Hi, id.Lo, e.cfg.Now().Unix())
	} else {
		e.procHist.Observe(sum.Total.Seconds())
	}
	for _, st := range obs.Stages() {
		if sp := sum.Stages[st]; sp.Dur > 0 || sp.Bytes > 0 {
			e.stageHist[st].Observe(sp.Dur.Seconds())
		}
	}
}

// route finds or creates the classState for the request.
func (e *Engine) route(req Request) (*classState, error) {
	switch e.cfg.Mode {
	case ModeClassless:
		return e.state("url:"+req.URL, nil), nil
	case ModeClasslessPerUser:
		return e.state("url:"+req.URL+"|user:"+req.UserID, nil), nil
	default:
		parts, err := e.cfg.Rules.Partition(req.URL)
		if err != nil {
			return nil, fmt.Errorf("core: partition request URL: %w", err)
		}
		res := e.classify.Group(req.URL, parts, req.Doc)
		if res.Created {
			e.ctr.classesCreated.Inc()
		}
		e.ctr.classifyProbes.Add(int64(res.Probes))
		return e.state(res.Class.ID, res.Class), nil
	}
}

// OwnerKey returns the cluster-ownership key for a request URL: the piece
// of the class identity computable from the URL alone (server-part "/"
// hint-part), so every tier node derives the same owner without running the
// grouping mechanism. All classes grouped from one (server, hint) pair share
// one key and therefore one owner. In the classless modes — where there is
// no class to co-locate — the URL itself is the key. URLs that fail to
// partition fall back to the raw URL; they fail identically on every node,
// so placement stays consistent.
func (e *Engine) OwnerKey(url string) string {
	if e.cfg.Mode != ModeClassBased {
		return url
	}
	parts, err := e.cfg.Rules.Partition(url)
	if err != nil {
		return url
	}
	return parts.Server + "/" + parts.Hint
}

// OwnerKeyForClass maps a class ID ("server/hint#seq") back to its
// cluster-ownership key by trimming the grouping sequence suffix, so
// status tooling can attribute stored classes to tier nodes.
func OwnerKeyForClass(classID string) string {
	if i := strings.LastIndexByte(classID, '#'); i >= 0 {
		return classID[:i]
	}
	return classID
}

// ObserveForward records the duration of one intra-tier forward hop in the
// pipeline stage histogram (obs.StageForward). The hop is measured by the
// delta-server rather than inside Process because the forward replaces the
// local pipeline entirely.
func (e *Engine) ObserveForward(d time.Duration) {
	e.stageHist[obs.StageForward].Observe(d.Seconds())
}

// advanceAnonymization drives the class's anonymization pipeline: it starts
// a process when the selector has a newer base than the one being (or
// already) distributed, feeds the current request into a running process,
// and installs the anonymized base when the process completes. Callers hold
// cs.mu.
func (e *Engine) advanceAnonymization(cs *classState, req Request, now time.Time) {
	base, version := cs.selector.Base()
	if version == 0 || base == nil {
		// base == nil with version > 0 is the evicted state: the selector
		// keeps its version counter but holds no document until the next
		// Observe re-warms it.
		return
	}

	if e.cfg.DisableAnonymization {
		// Distribute selector bases directly.
		if version > cs.distVersion {
			e.installBase(cs, version, base, now)
		}
		return
	}

	// (Re)start the process when the selector moved past what we are
	// anonymizing or distributing.
	if version > cs.anonSource && version > cs.distVersion {
		cs.anonProc = anonymize.NewProcess(base, cs.selector.BaseTag(), e.cfg.Anon)
		cs.anonSource = version
		e.ctr.anonStarted.Inc()
	}
	if cs.anonProc == nil {
		return
	}
	cs.anonProc.Compare(req.Doc, req.UserID)
	if !cs.anonProc.Done() {
		return
	}
	anon, err := cs.anonProc.Result()
	if err != nil {
		// Unreachable: Done() implies Result succeeds. Drop the process to
		// avoid wedging the class.
		cs.anonProc = nil
		return
	}
	cs.anonProc = nil
	e.ctr.anonCompleted.Inc()
	e.installBase(cs, cs.anonSource, anon, now)
}

// installBase records base as the class's distributable version v, links
// it into the version graph with an edge from the outgoing version, and
// prunes versions beyond the graph depth. Callers hold cs.mu; base must
// not be mutated after the call (it becomes the immutable payload of a
// baseVersion).
func (e *Engine) installBase(cs *classState, v int, base []byte, now time.Time) {
	// Build the graph edge before anything is pruned: the outgoing
	// distributable version is the edge's source, and its bytes must still
	// be resident to encode against.
	e.buildEdgeLocked(cs, cs.distVersion, v, base)
	cs.bases[v] = &baseVersion{bytes: base, cs: cs}
	cs.addBase(int64(len(base)))
	cs.distVersion = v
	cs.installedAt = now
	if cs.evicted {
		// A degraded class just got a distributable base again.
		cs.evicted = false
		cs.rewarms++
		e.ctr.rewarms.Inc()
	}
	if cs.class != nil {
		cs.class.SetMatchBase(base)
	}
	// Keep the GraphDepth highest version numbers, dropping each pruned
	// version's outgoing edge with it (edges into a pruned version always
	// come from a lower — also pruned — version, so no dangling edges
	// remain). Counting versions rather than measuring numeric distance
	// matters under per-node version striding
	// (basefile.Config.VersionStride), where consecutive versions differ by
	// the cluster size.
	if len(cs.bases) > e.cfg.GraphDepth {
		versions := make([]int, 0, len(cs.bases))
		for old := range cs.bases {
			versions = append(versions, old)
		}
		sort.Ints(versions)
		for _, old := range versions[:len(versions)-e.cfg.GraphDepth] {
			obv := cs.bases[old]
			delete(cs.bases, old)
			obv.release()
			cs.dropEdgeLocked(old)
		}
	}
	// A version install is an invalidation barrier for the memo cache:
	// deltas against dropped versions are gone with their bases, and a
	// rebase (or anonymization completion) means the class's serving state
	// moved — cached outcomes must not outlive it.
	cs.purgeDeltas()
	e.ctr.basesInstalled.Inc()
}

// encodeSnapshot captures, under the class lock, everything respond needs
// so the delta encode can run unlocked. All referenced byte payloads
// (base bytes, edge deltas) are immutable, so the snapshot stays valid
// even if the graph is concurrently pruned or rebased.
type encodeSnapshot struct {
	distVersion   int          // distributable version at snapshot time
	clientVersion int          // newest held version the server still stores
	base          *baseVersion // base to encode against; nil → full response
	// chain, when non-nil, is the version graph's edge walk from
	// clientVersion up to distVersion, and tipBase is the current version's
	// base — the composed-chain alternative to encoding directly against
	// base. nil when the client is current or the walk is broken.
	chain   []*versionEdge
	tipBase *baseVersion
	// heldStale reports that the client advertised a version for this class
	// but none it holds is retained — the graph aged it out.
	heldStale bool
}

// snapshotLocked picks the base-file version to delta against — the newest
// version the client holds that the server still stores — and, for a
// lagging client, walks the version graph to capture the composed-chain
// alternative. Callers hold cs.mu.
func (cs *classState) snapshotLocked(req Request) encodeSnapshot {
	snap := encodeSnapshot{distVersion: cs.distVersion}
	if cs.distVersion == 0 {
		// No distributable base yet (anonymization in progress).
		return snap
	}
	held := false
	req.forEachHeldVersion(cs.id, func(v int) {
		held = true
		if bv, ok := cs.bases[v]; ok && v > snap.clientVersion {
			snap.clientVersion, snap.base = v, bv
		}
	})
	if snap.base == nil {
		snap.heldStale = held
		return snap
	}
	if snap.clientVersion == cs.distVersion {
		return snap
	}
	// Walk the edges from the client's version toward the current one. A
	// gap (edge or endpoint missing — residue striding, a partial fault-in)
	// leaves chain nil and the client gets a direct encode.
	var chain []*versionEdge
	for w := snap.clientVersion; w != cs.distVersion; {
		ge := cs.edges[w]
		if ge == nil {
			return snap
		}
		if _, ok := cs.bases[ge.to]; !ok {
			return snap
		}
		chain = append(chain, ge)
		w = ge.to
		if len(chain) > len(cs.edges) {
			return snap // unreachable cycle guard
		}
	}
	if tip, ok := cs.bases[cs.distVersion]; ok {
		snap.chain, snap.tipBase = chain, tip
	}
	return snap
}

// latestVersion reads the class's distributable version under a read lock.
func (e *Engine) latestVersion(cs *classState) int {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return cs.distVersion
}

// respond chooses between a delta and a full response. It runs with no
// class lock held. With the delta cache enabled (the default) it first
// consults the class's memo cache: a committed result is served by
// aliasing the immutable cached payload, a concurrent encode for the same
// key is joined (singleflight — the caller blocks until the leader
// commits and shares its outcome), and only a cold key actually encodes,
// via encodeResponse, then commits the outcome for every sharer.
//
// The memo key fingerprints the document content, so two requests share a
// result only when they hold the same base version and carry byte-equal
// documents in the same wire format; the anonymization epoch guards the
// whole cache (see deltacache.Cache.Acquire).
func (e *Engine) respond(cs *classState, snap encodeSnapshot, req Request, now time.Time, tr *obs.Trace) Response {
	if snap.base == nil {
		return Response{Kind: KindFull, LatestVersion: snap.distVersion}
	}
	format := req.Format
	if format == 0 {
		format = FormatVdelta
	}
	// A lagging client with an intact edge walk gets whichever of direct
	// encode and composed chain the estimator predicts is smaller on the
	// wire. Ties go to the chain: its edges are already encoded, so it
	// skips the full-document direct encode entirely. Chains are vdelta
	// framing; VCDIFF clients always encode direct.
	if len(snap.chain) > 0 && format == FormatVdelta {
		direct := e.estimator.Estimate(snap.base.bytes, req.Doc)
		composed := e.estimator.Estimate(snap.tipBase.bytes, req.Doc)
		for _, ge := range snap.chain {
			composed += ge.rawLen
		}
		// An oversized *direct* delta for a lagging client is not content
		// drift — the tip still matches the document — so when the direct
		// estimate breaches the rebase ratio the chain serves even if it
		// predicts larger, rather than letting one stale client trigger a
		// spurious class-wide rebase.
		if composed <= direct || float64(direct) > e.cfg.MaxDeltaRatio*float64(len(req.Doc)) {
			return e.respondChain(cs, snap, req, now, tr)
		}
	}
	if cs.deltas == nil {
		return e.encodeResponse(cs, snap, req, format, now, tr)
	}

	t0 := tr.Now()
	// Direct encodes use To 0: the target is the document itself, not a
	// retained graph version (composed chains key (From, To); see
	// respondChain).
	key := deltacache.Key{
		From:    snap.clientVersion,
		DocHash: maphash.Bytes(e.docSeed, req.Doc),
		DocLen:  len(req.Doc),
		Format:  uint8(format),
	}
	res, fl, st := cs.deltas.Acquire(key, e.anonEpoch.Load())
	switch st {
	case deltacache.StatusHit:
		e.ctr.memoHits.Inc()
	case deltacache.StatusCoalesced:
		res = fl.Wait()
		e.ctr.memoCoalesced.Inc()
	default: // StatusLead: this request owns the encode for the key.
		e.ctr.memoMisses.Inc()
		tr.Record(obs.StageMemo, t0, 0)
		resp := e.encodeResponse(cs, snap, req, format, now, tr)
		out := deltacache.Result{Outcome: deltacache.OutcomeFull}
		switch {
		case resp.Kind == KindDelta:
			// The payload is a fresh allocation (never pooled scratch; see
			// encodeResponse), so retaining and sharing it by alias is safe.
			out = deltacache.Result{
				Outcome: deltacache.OutcomeDelta,
				Payload: resp.Payload,
				Gzipped: resp.Gzipped,
			}
		case resp.BasicRebase:
			out.Outcome = deltacache.OutcomeTooBig
		}
		cs.deltas.Commit(fl, out)
		return resp
	}

	tr.Record(obs.StageMemo, t0, int64(len(res.Payload)))
	switch res.Outcome {
	case deltacache.OutcomeDelta:
		return Response{
			Kind:          KindDelta,
			BaseVersion:   snap.clientVersion,
			LatestVersion: e.latestVersion(cs),
			Payload:       res.Payload,
			Gzipped:       res.Gzipped,
			Format:        format,
		}
	case deltacache.OutcomeTooBig:
		// The leader's delta was oversized and it chose a rebase. Follow it
		// through basicRebase, whose under-lock revalidation ensures only
		// one rebase lands however many sharers take this path.
		return e.basicRebase(cs, snap, req, now)
	default:
		return Response{Kind: KindFull, LatestVersion: e.latestVersion(cs)}
	}
}

// encodeResponse performs the actual delta encode for respond. It runs
// with no class lock held: the snapshot's base bytes and codec index are
// immutable, so concurrent requests to one class overlap on the encode.
// Before answering, the class's distributable version is re-read under the
// lock (encode-then-revalidate) so clients learn about rebases that landed
// while we were encoding; the delta itself stays valid regardless, because
// it was computed against bytes the client holds.
//
// The vdelta path encodes into a pooled scratch buffer and gzips from it,
// so a steady-state delta response allocates only the returned payload.
// The payload never aliases pooled memory — it is a fresh gzip output or a
// fresh copy — which is what lets respond retain it in the memo cache.
func (e *Engine) encodeResponse(cs *classState, snap encodeSnapshot, req Request, format Format, now time.Time, tr *obs.Trace) Response {
	e.ctr.encodeRuns.Inc()
	var delta []byte
	var err error
	var scratch *encodeBuf // non-nil when delta lives in pooled memory
	t0 := tr.Now()
	if format == FormatVCDIFF {
		delta, err = vcdiff.Encode(snap.base.bytes, req.Doc)
	} else {
		// The base-file changes only on rebases, so its codec index is
		// built once per version and reused across requests; the delta is
		// built in request-scoped scratch.
		scratch = e.getEncodeBuf()
		delta, err = e.coder.EncodeIndexedInto(snap.base.vdeltaIndex(e.coder), req.Doc, scratch.buf)
		scratch.buf = delta[:0] // retain grown capacity whatever path follows
	}
	tr.Record(obs.StageEncode, t0, int64(len(delta)))
	release := func() {
		if scratch != nil {
			e.encBufs.Put(scratch)
		}
	}
	if err != nil {
		release()
		return Response{Kind: KindFull, LatestVersion: e.latestVersion(cs)}
	}
	if float64(len(delta)) > e.cfg.MaxDeltaRatio*float64(len(req.Doc)) {
		release()
		return e.basicRebase(cs, snap, req, now)
	}

	payload := delta
	gzipped := false
	if !e.cfg.GzipOff {
		t0 = tr.Now()
		c := gzipx.Compress(delta)
		tr.Record(obs.StageGzip, t0, int64(len(c)))
		if len(c) < len(delta) {
			payload, gzipped = c, true
		}
	}
	if !gzipped && scratch != nil {
		// The uncompressed delta is pooled scratch; the payload escapes to
		// the caller, so it must be a fresh copy.
		payload = append([]byte(nil), delta...)
	}
	release()
	return Response{
		Kind:          KindDelta,
		BaseVersion:   snap.clientVersion,
		LatestVersion: e.latestVersion(cs),
		Payload:       payload,
		Gzipped:       gzipped,
		Format:        format,
	}
}

// basicRebase handles an oversized delta: the base-file has drifted too far
// from the class, so the current document becomes the new base (Section
// IV). The paper flushes the stored samples; the new base becomes
// distributable after anonymization (class-based) or immediately
// (baselines). The oversized delta was computed outside the lock, so the
// class is first re-validated under the write lock: if another request
// already rebased past the snapshot, the evidence is stale and the request
// is served full without a second rebase.
func (e *Engine) basicRebase(cs *classState, snap encodeSnapshot, req Request, now time.Time) Response {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.distVersion != snap.distVersion {
		return Response{Kind: KindFull, LatestVersion: cs.distVersion}
	}
	v := cs.selector.BasicRebase(req.Doc, req.UserID, now)
	e.ctr.rebaseBasic.Inc()
	if e.cfg.DisableAnonymization {
		e.installBase(cs, v, append([]byte(nil), req.Doc...), now)
	} else {
		cs.anonProc = anonymize.NewProcess(req.Doc, req.UserID, e.cfg.Anon)
		cs.anonSource = v
		e.ctr.anonStarted.Inc()
	}
	return Response{Kind: KindFull, BasicRebase: true, LatestVersion: cs.distVersion}
}

// BaseFile returns a copy of the distributable base-file bytes for a class
// and version. ok is false when the class or version is unknown (e.g.
// pruned).
func (e *Engine) BaseFile(classID string, version int) ([]byte, bool) {
	base, ok := e.BaseFileView(classID, version)
	if !ok {
		return nil, false
	}
	out := make([]byte, len(base))
	copy(out, base)
	return out, true
}

// BaseFileView is BaseFile without the defensive copy: the returned bytes
// are an immutable installed base version and must not be modified. The
// delta-server's base-distribution endpoint uses this so that serving a
// base-file touches only two read locks and allocates nothing.
func (e *Engine) BaseFileView(classID string, version int) ([]byte, bool) {
	cs, exists := e.lookup(classID)
	if !exists {
		return nil, false
	}
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	bv, ok := cs.bases[version]
	if !ok {
		return nil, false
	}
	return bv.bytes, true
}

// LatestBase returns a copy of the newest distributable base-file for a
// class and its version. ok is false when the class has no distributable
// base yet.
func (e *Engine) LatestBase(classID string) ([]byte, int, bool) {
	cs, exists := e.lookup(classID)
	if !exists {
		return nil, 0, false
	}
	cs.mu.RLock()
	if cs.distVersion == 0 {
		cs.mu.RUnlock()
		return nil, 0, false
	}
	bv := cs.bases[cs.distVersion]
	version := cs.distVersion
	cs.mu.RUnlock()
	out := make([]byte, len(bv.bytes))
	copy(out, bv.bytes)
	return out, version, true
}

// Stats is a snapshot of the engine's behaviour, the raw material for the
// paper's tables.
type Stats struct {
	Mode           Mode
	Requests       int64
	FullResponses  int64
	DeltaResponses int64

	BytesDirect int64 // what a server without delta-encoding would send
	BytesDelta  int64 // delta payload bytes actually sent
	BytesFull   int64 // full-document bytes actually sent

	Classes      int   // classStates (classes, or documents in classless modes)
	GroupRebases int64 // group-rebases across all classes
	BasicRebases int64 // basic-rebases across all classes

	AnonStarted   int64 // anonymization processes started
	AnonCompleted int64 // anonymization processes completed

	// StorageBytes is the server-side storage footprint: distributable
	// base versions plus the selectors' stored candidate documents. This
	// is the scalability headline of the paper.
	StorageBytes int64
}

// Savings returns the bandwidth savings fraction (1 - sent/direct) over the
// client-facing link, counting delta and full responses.
func (s Stats) Savings() float64 {
	if s.BytesDirect == 0 {
		return 0
	}
	sent := s.BytesDelta + s.BytesFull
	return 1 - float64(sent)/float64(s.BytesDirect)
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	states := e.states()

	var storage int64
	for _, cs := range states {
		cs.mu.RLock()
		for _, bv := range cs.bases {
			storage += int64(len(bv.bytes))
		}
		cs.mu.RUnlock()
		sel := cs.selector.Stats()
		storage += int64(sel.StoredBytes)
	}

	return Stats{
		Mode:           e.cfg.Mode,
		Requests:       e.ctr.requests.Value(),
		FullResponses:  e.ctr.responsesFull.Value(),
		DeltaResponses: e.ctr.responsesDelta.Value(),
		BytesDirect:    e.ctr.bytesDirect.Value(),
		BytesDelta:     e.ctr.bytesDelta.Value(),
		BytesFull:      e.ctr.bytesFull.Value(),
		Classes:        len(states),
		GroupRebases:   e.ctr.rebaseGroup.Value(),
		BasicRebases:   e.ctr.rebaseBasic.Value(),
		AnonStarted:    e.ctr.anonStarted.Value(),
		AnonCompleted:  e.ctr.anonCompleted.Value(),
		StorageBytes:   storage,
	}
}

// Decode reconstructs a document from a base-file and a vdelta response
// payload, undoing gzip when the response says so. It is what a
// delta-capable client runs; the engine exposes it so callers need not know
// the codec config. For VCDIFF responses use DecodeAs.
func (e *Engine) Decode(base, payload []byte, gzipped bool) ([]byte, error) {
	return e.DecodeAs(base, payload, gzipped, FormatVdelta)
}

// DecodeAs is Decode for an explicit wire format. For FormatVdeltaChain
// the payload is a framed segment sequence (deltahttp.AppendChain): each
// segment's delta is applied to the previous segment's output, starting
// from base, and the last application yields the document.
func (e *Engine) DecodeAs(base, payload []byte, gzipped bool, format Format) ([]byte, error) {
	delta := payload
	if gzipped {
		d, err := gzipx.Decompress(payload)
		if err != nil {
			return nil, fmt.Errorf("core: decompress delta: %w", err)
		}
		delta = d
	}
	if format == FormatVdeltaChain {
		segs, err := deltahttp.ParseChain(delta)
		if err != nil {
			return nil, fmt.Errorf("core: parse delta chain: %w", err)
		}
		cur := base
		for i, s := range segs {
			d := s.Payload
			if s.Gzipped {
				d, err = gzipx.Decompress(d)
				if err != nil {
					return nil, fmt.Errorf("core: decompress chain segment %d: %w", i, err)
				}
			}
			cur, err = e.coder.Decode(cur, d)
			if err != nil {
				return nil, fmt.Errorf("core: apply chain segment %d: %w", i, err)
			}
		}
		return cur, nil
	}
	var doc []byte
	var err error
	if format == FormatVCDIFF {
		doc, err = vcdiff.Decode(base, delta)
	} else {
		doc, err = e.coder.Decode(base, delta)
	}
	if err != nil {
		return nil, fmt.Errorf("core: apply delta: %w", err)
	}
	return doc, nil
}

// StoreStats snapshots the storage-governance layer: the byte ledger by
// category, the budget, resident versus total classes, and the recent
// prune/evict log. The delta-server's /_cbde/store endpoint serves it.
func (e *Engine) StoreStats() store.Stats { return e.cstore.Stats() }

// BumpAnonEpoch advances the engine-wide anonymization epoch and purges
// every class's memoized deltas and version-graph edges. Call it when the
// anonymization policy (or any input to it) changes out-of-band: cached
// payloads and edge deltas embed anonymized base content and must not
// survive the change. Delta purging is eager here and also lazy at lookup
// (the epoch is checked on every cache acquire), so a cache that misses
// the eager sweep — e.g. a class created concurrently — still never
// serves a pre-bump payload; edges have no lazy check, so the eager sweep
// under each class lock is the invalidation.
func (e *Engine) BumpAnonEpoch() {
	e.anonEpoch.Add(1)
	for _, cs := range e.states() {
		cs.mu.Lock()
		cs.dropEdgesLocked()
		cs.mu.Unlock()
		cs.purgeDeltas()
	}
}

// DeltaCacheStats aggregates the per-class delta memo caches for
// reporting: the delta-server's /_cbde/store endpoint serves it alongside
// the store ledger.
type DeltaCacheStats struct {
	// Enabled reports whether memoization is on (Config.DeltaCacheOff).
	Enabled bool `json:"enabled"`
	// Hits, Misses, and Coalesced classify every cache consult: served
	// from cache, led an encode, or waited on another request's encode.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	// Entries and Bytes are the currently retained deltas and their
	// payload bytes, summed over classes.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Invalidations counts entries dropped by purges and cap evictions.
	Invalidations int64 `json:"invalidations"`
}

// DeltaCacheStats snapshots the delta memo caches across all classes.
func (e *Engine) DeltaCacheStats() DeltaCacheStats {
	st := DeltaCacheStats{
		Enabled:   !e.cfg.DeltaCacheOff,
		Hits:      e.ctr.memoHits.Value(),
		Misses:    e.ctr.memoMisses.Value(),
		Coalesced: e.ctr.memoCoalesced.Value(),
	}
	e.cstore.ForEach(func(_ string, ent store.Entry) bool {
		if c := ent.(*classState).deltas; c != nil {
			cst := c.Stats()
			st.Entries += cst.Entries
			st.Bytes += cst.Bytes
			st.Invalidations += int64(cst.Invalidations)
		}
		return true
	})
	return st
}

// Quiesce blocks until every class's outstanding asynchronous sample
// admissions — and the budget maintenance each one schedules — have
// completed. With synchronous sampling it is a no-op. Call it before
// asserting on resident bytes or snapshotting state.
func (e *Engine) Quiesce() {
	e.cstore.ForEach(func(_ string, ent store.Entry) bool {
		ent.(*classState).selector.Quiesce()
		return true
	})
}

// GroupingStats exposes the classifier's statistics in class-based mode.
// ok is false in classless modes.
func (e *Engine) GroupingStats() (classify.Stats, bool) {
	if e.classify == nil {
		return classify.Stats{}, false
	}
	return e.classify.Stats(), true
}
