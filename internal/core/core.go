// Package core implements class-based delta-encoding — the paper's primary
// contribution. The Engine orchestrates the grouping mechanism (Section
// III), the randomized base-file selection (Section IV), the anonymization
// process (Section V), and the Vdelta codec into the request-processing
// pipeline a delta-server runs:
//
//  1. The request's URL is partitioned (server-part / hint-part / rest) and
//     grouped into a class; the class's single base-file serves every
//     member document.
//  2. The current document snapshot (fetched from the adjacent web-server)
//     is delta-encoded against the base-file the client holds; the (gzipped)
//     delta is shipped instead of the full document.
//  3. Every document feeds the class's base-file selector and the pending
//     anonymization process. Until a class's base-file has been anonymized
//     against N distinct users it is never distributed, and the class is
//     served full documents.
//
// The Engine also implements the classless baseline (one base-file per
// document, or per document per user when personalization is modeled),
// whose server-side storage blow-up motivates the class-based scheme.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/classify"
	"cbde/internal/gzipx"
	"cbde/internal/metrics"
	"cbde/internal/urlparts"
	"cbde/internal/vcdiff"
	"cbde/internal/vdelta"
)

// Mode selects how the engine maps documents to base-files.
type Mode int

const (
	// ModeClassBased is the paper's scheme: one base-file per class.
	ModeClassBased Mode = iota + 1
	// ModeClassless is the basic delta-encoding baseline: one base-file
	// per document URL.
	ModeClassless
	// ModeClasslessPerUser models personalized documents under the basic
	// scheme: one base-file per (URL, user) pair — the storage blow-up of
	// Section II.
	ModeClasslessPerUser
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeClassBased:
		return "class-based"
	case ModeClassless:
		return "classless"
	case ModeClasslessPerUser:
		return "classless-per-user"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parametrizes an Engine. The zero value selects class-based mode
// with the paper's default parameters.
type Config struct {
	// Mode selects class-based operation or a classless baseline.
	// Default ModeClassBased.
	Mode Mode
	// Rules partitions URLs per site. Default: the Table I heuristic only.
	Rules *urlparts.RuleSet
	// Classify configures the grouping mechanism (Section III).
	Classify classify.Config
	// Selector configures per-class base-file selection (Section IV).
	Selector basefile.Config
	// Anon configures base-file anonymization (Section V).
	Anon anonymize.Config
	// DisableAnonymization turns the anonymization stage off: base-files
	// are distributed immediately. The classless baselines imply this
	// (their base-files are private to a URL or user).
	DisableAnonymization bool
	// Codec configures the Vdelta coder.
	Codec []vdelta.Option
	// GzipDeltas compresses deltas with gzip before shipping, as in the
	// paper's experiments. Default true; set GzipOff to disable.
	GzipOff bool
	// MaxDeltaRatio triggers a basic-rebase when the (uncompressed) delta
	// exceeds this fraction of the document size. Default 0.5.
	MaxDeltaRatio float64
	// KeepBaseVersions is how many distributed base-file versions per class
	// stay available for clients that hold an older version. Default 2.
	KeepBaseVersions int
	// Now supplies time, for deterministic tests. Default time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Mode == 0 {
		c.Mode = ModeClassBased
	}
	if c.Rules == nil {
		c.Rules = urlparts.NewRuleSet()
	}
	if c.MaxDeltaRatio <= 0 || c.MaxDeltaRatio > 1 {
		c.MaxDeltaRatio = 0.5
	}
	if c.KeepBaseVersions <= 0 {
		c.KeepBaseVersions = 2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Mode != ModeClassBased {
		c.DisableAnonymization = true
		// Classless base-files are previous snapshots of the same document;
		// there is nothing to sample across.
		c.Selector.SampleProb = -1
	}
	return c
}

// Format selects the delta wire format for a response.
type Format int

const (
	// FormatVdelta is the internal vdelta instruction stream (default).
	FormatVdelta Format = iota + 1
	// FormatVCDIFF is the RFC 3284 interchange format (reference [12]).
	FormatVCDIFF
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case FormatVdelta:
		return "vdelta"
	case FormatVCDIFF:
		return "vcdiff"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// HeldBase identifies one base-file a client holds in its cache.
type HeldBase struct {
	ClassID string
	Version int
}

// Request is one client request together with the current document snapshot
// the delta-server fetched from the web-server.
type Request struct {
	URL    string // full request URL
	UserID string // requesting user (cookie-derived in the paper)
	Doc    []byte // current snapshot of the dynamic document

	// Held lists the base-files the client holds for this server. The
	// client cannot know which class an unseen URL belongs to, so it
	// advertises everything it has; the engine picks the entry matching
	// the document's class, if any. Deltas are only sent against a
	// base-file the client holds.
	Held []HeldBase

	// HaveClassID and HaveVersion are a single-entry convenience
	// equivalent to one Held element.
	HaveClassID string
	HaveVersion int

	// Format selects the delta wire format (zero value: FormatVdelta).
	// Clients that implement RFC 3284 request FormatVCDIFF.
	Format Format
}

// heldVersionsFor returns every version of classID the client holds.
func (r Request) heldVersionsFor(classID string) []int {
	var out []int
	if r.HaveClassID == classID && r.HaveVersion > 0 {
		out = append(out, r.HaveVersion)
	}
	for _, h := range r.Held {
		if h.ClassID == classID && h.Version > 0 {
			out = append(out, h.Version)
		}
	}
	return out
}

// ResponseKind distinguishes full-document from delta responses.
type ResponseKind int

const (
	// KindFull means the response carries the complete document.
	KindFull ResponseKind = iota + 1
	// KindDelta means the response carries a delta against the base-file
	// identified by ClassID/BaseVersion.
	KindDelta
)

// String implements fmt.Stringer.
func (k ResponseKind) String() string {
	switch k {
	case KindFull:
		return "full"
	case KindDelta:
		return "delta"
	default:
		return fmt.Sprintf("ResponseKind(%d)", int(k))
	}
}

// Response is the engine's decision for one request.
type Response struct {
	Kind ResponseKind
	// ClassID identifies the document's class (empty while ungrouped in
	// classless modes before the first base exists).
	ClassID string
	// BaseVersion is the base-file version the delta was encoded against
	// (KindDelta), or 0.
	BaseVersion int
	// LatestVersion is the newest distributable base-file version for the
	// class; clients holding older versions should refresh.
	LatestVersion int
	// Payload is the delta (gzipped unless GzipOff) for KindDelta, nil for
	// KindFull (the caller already holds Doc).
	Payload []byte
	// Gzipped reports whether Payload is gzip-compressed.
	Gzipped bool
	// Format is the wire format of Payload for KindDelta.
	Format Format
	// BasicRebase reports that this request triggered a basic-rebase
	// because its delta came out too large.
	BasicRebase bool
}

// WireSize returns the number of payload bytes this response puts on the
// client-facing network: the delta size, or the full document size.
func (r Response) WireSize(docLen int) int {
	if r.Kind == KindDelta {
		return len(r.Payload)
	}
	return docLen
}

// ErrNoDocument is returned by Process for requests without a document.
var ErrNoDocument = errors.New("core: request has no document snapshot")

// classState is the engine's per-class serving state.
type classState struct {
	mu sync.Mutex

	class    *classify.Class // nil in classless modes
	id       string
	selector *basefile.Selector

	// Distributable (anonymized, for class-based mode) base-file versions.
	// bases[v] exists for the KeepBaseVersions most recent versions.
	bases       map[int][]byte
	indexes     map[int]*vdelta.Index // lazily built codec indexes per version
	distVersion int                   // newest distributable version; 0 = none yet

	// anonProc anonymizes the selector's base at selectorVersion
	// anonSource; nil when idle or anonymization is disabled.
	anonProc   *anonymize.Process
	anonSource int
}

// Engine implements class-based delta-encoding. Create one with NewEngine;
// it is safe for concurrent use.
type Engine struct {
	cfg      Config
	coder    *vdelta.Coder
	classify *classify.Manager

	mu      sync.Mutex
	classes map[string]*classState // by class/document key

	reg *metrics.Registry
}

// NewEngine returns an Engine configured by cfg.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:     cfg,
		coder:   vdelta.NewCoder(cfg.Codec...),
		classes: make(map[string]*classState),
		reg:     metrics.NewRegistry(),
	}
	if cfg.Mode == ModeClassBased {
		e.classify = classify.NewManager(cfg.Classify)
	}
	return e, nil
}

// Metrics exposes the engine's metrics registry.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// state returns (creating if needed) the classState for key.
func (e *Engine) state(key string, class *classify.Class) *classState {
	e.mu.Lock()
	defer e.mu.Unlock()
	cs, ok := e.classes[key]
	if !ok {
		cs = &classState{
			id:       key,
			class:    class,
			selector: basefile.NewSelector(e.cfg.Selector),
			bases:    make(map[int][]byte),
			indexes:  make(map[int]*vdelta.Index),
		}
		e.classes[key] = cs
	}
	return cs
}

// Process runs one request through the pipeline and decides what to send.
func (e *Engine) Process(req Request) (Response, error) {
	if req.Doc == nil {
		return Response{}, ErrNoDocument
	}
	now := e.cfg.Now()
	e.reg.Counter("requests").Inc()
	e.reg.Counter("bytes.direct").Add(int64(len(req.Doc)))

	cs, err := e.route(req)
	if err != nil {
		return Response{}, err
	}

	cs.mu.Lock()
	defer cs.mu.Unlock()

	// Feed the document to the selector (Section IV) and drive the
	// anonymization pipeline (Section V).
	ev := cs.selector.ObserveTagged(req.Doc, req.UserID, now)
	if ev.GroupRebase {
		e.reg.Counter("rebase.group").Inc()
	}
	e.advanceAnonymization(cs, req, now)

	resp := e.respond(cs, req, now)
	resp.ClassID = cs.id
	resp.LatestVersion = cs.distVersion
	if resp.Kind == KindDelta {
		e.reg.Counter("responses.delta").Inc()
		e.reg.Counter("bytes.delta").Add(int64(len(resp.Payload)))
	} else {
		e.reg.Counter("responses.full").Inc()
		e.reg.Counter("bytes.full").Add(int64(len(req.Doc)))
	}
	return resp, nil
}

// route finds or creates the classState for the request.
func (e *Engine) route(req Request) (*classState, error) {
	switch e.cfg.Mode {
	case ModeClassless:
		return e.state("url:"+req.URL, nil), nil
	case ModeClasslessPerUser:
		return e.state("url:"+req.URL+"|user:"+req.UserID, nil), nil
	default:
		parts, err := e.cfg.Rules.Partition(req.URL)
		if err != nil {
			return nil, fmt.Errorf("core: partition request URL: %w", err)
		}
		res := e.classify.Group(req.URL, parts, req.Doc)
		if res.Created {
			e.reg.Counter("classes.created").Inc()
		}
		e.reg.Counter("classify.probes").Add(int64(res.Probes))
		return e.state(res.Class.ID, res.Class), nil
	}
}

// advanceAnonymization drives the class's anonymization pipeline: it starts
// a process when the selector has a newer base than the one being (or
// already) distributed, feeds the current request into a running process,
// and installs the anonymized base when the process completes. Callers hold
// cs.mu.
func (e *Engine) advanceAnonymization(cs *classState, req Request, now time.Time) {
	base, version := cs.selector.Base()
	if version == 0 {
		return
	}

	if e.cfg.DisableAnonymization {
		// Distribute selector bases directly.
		if version > cs.distVersion {
			e.installBase(cs, version, base)
		}
		return
	}

	// (Re)start the process when the selector moved past what we are
	// anonymizing or distributing.
	if version > cs.anonSource && version > cs.distVersion {
		cs.anonProc = anonymize.NewProcess(base, cs.selector.BaseTag(), e.cfg.Anon)
		cs.anonSource = version
		e.reg.Counter("anon.started").Inc()
	}
	if cs.anonProc == nil {
		return
	}
	cs.anonProc.Compare(req.Doc, req.UserID)
	if !cs.anonProc.Done() {
		return
	}
	anon, err := cs.anonProc.Result()
	if err != nil {
		// Unreachable: Done() implies Result succeeds. Drop the process to
		// avoid wedging the class.
		cs.anonProc = nil
		return
	}
	cs.anonProc = nil
	e.reg.Counter("anon.completed").Inc()
	e.installBase(cs, cs.anonSource, anon)
}

// installBase records base as the class's distributable version v and
// prunes old versions. Callers hold cs.mu.
func (e *Engine) installBase(cs *classState, v int, base []byte) {
	cs.bases[v] = base
	cs.distVersion = v
	if cs.class != nil {
		cs.class.SetMatchBase(base)
	}
	for old := range cs.bases {
		if old <= v-e.cfg.KeepBaseVersions {
			delete(cs.bases, old)
			delete(cs.indexes, old)
		}
	}
	e.reg.Counter("bases.installed").Inc()
}

// respond chooses between a delta and a full response. Callers hold cs.mu.
func (e *Engine) respond(cs *classState, req Request, now time.Time) Response {
	if cs.distVersion == 0 {
		// No distributable base yet (anonymization in progress).
		return Response{Kind: KindFull}
	}

	// Deltas are only useful against a base the client holds and the
	// server still stores; prefer the newest such version.
	clientVersion := 0
	for _, v := range req.heldVersionsFor(cs.id) {
		if _, ok := cs.bases[v]; ok && v > clientVersion {
			clientVersion = v
		}
	}
	if clientVersion == 0 {
		return Response{Kind: KindFull}
	}
	base := cs.bases[clientVersion]

	format := req.Format
	if format == 0 {
		format = FormatVdelta
	}
	var delta []byte
	var err error
	if format == FormatVCDIFF {
		delta, err = vcdiff.Encode(base, req.Doc)
	} else {
		// The base-file changes only on rebases, so its codec index is
		// built once per version and reused across requests.
		ix := cs.indexes[clientVersion]
		if ix == nil {
			ix = e.coder.NewIndex(base)
			cs.indexes[clientVersion] = ix
		}
		delta, err = e.coder.EncodeIndexed(ix, req.Doc)
	}
	if err != nil {
		return Response{Kind: KindFull}
	}
	if float64(len(delta)) > e.cfg.MaxDeltaRatio*float64(len(req.Doc)) {
		// The base-file has drifted too far: basic-rebase on the current
		// document (Section IV). The paper flushes the stored samples; the
		// new base becomes distributable after anonymization (class-based)
		// or immediately (baselines).
		v := cs.selector.BasicRebase(req.Doc, req.UserID, now)
		e.reg.Counter("rebase.basic").Inc()
		if e.cfg.DisableAnonymization {
			e.installBase(cs, v, append([]byte(nil), req.Doc...))
		} else {
			cs.anonProc = anonymize.NewProcess(req.Doc, req.UserID, e.cfg.Anon)
			cs.anonSource = v
			e.reg.Counter("anon.started").Inc()
		}
		return Response{Kind: KindFull, BasicRebase: true}
	}

	payload := delta
	gzipped := false
	if !e.cfg.GzipOff {
		if c := gzipx.Compress(delta); len(c) < len(delta) {
			payload, gzipped = c, true
		}
	}
	return Response{
		Kind:        KindDelta,
		BaseVersion: clientVersion,
		Payload:     payload,
		Gzipped:     gzipped,
		Format:      format,
	}
}

// BaseFile returns the distributable base-file bytes for a class and
// version. ok is false when the class or version is unknown (e.g. pruned).
func (e *Engine) BaseFile(classID string, version int) ([]byte, bool) {
	e.mu.Lock()
	cs, exists := e.classes[classID]
	e.mu.Unlock()
	if !exists {
		return nil, false
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	base, ok := cs.bases[version]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(base))
	copy(out, base)
	return out, true
}

// LatestBase returns the newest distributable base-file for a class and its
// version. ok is false when the class has no distributable base yet.
func (e *Engine) LatestBase(classID string) ([]byte, int, bool) {
	e.mu.Lock()
	cs, exists := e.classes[classID]
	e.mu.Unlock()
	if !exists {
		return nil, 0, false
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.distVersion == 0 {
		return nil, 0, false
	}
	base := cs.bases[cs.distVersion]
	out := make([]byte, len(base))
	copy(out, base)
	return out, cs.distVersion, true
}

// Stats is a snapshot of the engine's behaviour, the raw material for the
// paper's tables.
type Stats struct {
	Mode           Mode
	Requests       int64
	FullResponses  int64
	DeltaResponses int64

	BytesDirect int64 // what a server without delta-encoding would send
	BytesDelta  int64 // delta payload bytes actually sent
	BytesFull   int64 // full-document bytes actually sent

	Classes      int   // classStates (classes, or documents in classless modes)
	GroupRebases int64 // group-rebases across all classes
	BasicRebases int64 // basic-rebases across all classes

	AnonStarted   int64 // anonymization processes started
	AnonCompleted int64 // anonymization processes completed

	// StorageBytes is the server-side storage footprint: distributable
	// base versions plus the selectors' stored candidate documents. This
	// is the scalability headline of the paper.
	StorageBytes int64
}

// Savings returns the bandwidth savings fraction (1 - sent/direct) over the
// client-facing link, counting delta and full responses.
func (s Stats) Savings() float64 {
	if s.BytesDirect == 0 {
		return 0
	}
	sent := s.BytesDelta + s.BytesFull
	return 1 - float64(sent)/float64(s.BytesDirect)
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	states := make([]*classState, 0, len(e.classes))
	for _, cs := range e.classes {
		states = append(states, cs)
	}
	e.mu.Unlock()

	var storage int64
	for _, cs := range states {
		cs.mu.Lock()
		for _, b := range cs.bases {
			storage += int64(len(b))
		}
		sel := cs.selector.Stats()
		storage += int64(sel.StoredBytes)
		cs.mu.Unlock()
	}

	return Stats{
		Mode:           e.cfg.Mode,
		Requests:       e.reg.Counter("requests").Value(),
		FullResponses:  e.reg.Counter("responses.full").Value(),
		DeltaResponses: e.reg.Counter("responses.delta").Value(),
		BytesDirect:    e.reg.Counter("bytes.direct").Value(),
		BytesDelta:     e.reg.Counter("bytes.delta").Value(),
		BytesFull:      e.reg.Counter("bytes.full").Value(),
		Classes:        len(states),
		GroupRebases:   e.reg.Counter("rebase.group").Value(),
		BasicRebases:   e.reg.Counter("rebase.basic").Value(),
		AnonStarted:    e.reg.Counter("anon.started").Value(),
		AnonCompleted:  e.reg.Counter("anon.completed").Value(),
		StorageBytes:   storage,
	}
}

// Decode reconstructs a document from a base-file and a vdelta response
// payload, undoing gzip when the response says so. It is what a
// delta-capable client runs; the engine exposes it so callers need not know
// the codec config. For VCDIFF responses use DecodeAs.
func (e *Engine) Decode(base, payload []byte, gzipped bool) ([]byte, error) {
	return e.DecodeAs(base, payload, gzipped, FormatVdelta)
}

// DecodeAs is Decode for an explicit wire format.
func (e *Engine) DecodeAs(base, payload []byte, gzipped bool, format Format) ([]byte, error) {
	delta := payload
	if gzipped {
		d, err := gzipx.Decompress(payload)
		if err != nil {
			return nil, fmt.Errorf("core: decompress delta: %w", err)
		}
		delta = d
	}
	var doc []byte
	var err error
	if format == FormatVCDIFF {
		doc, err = vcdiff.Decode(base, delta)
	} else {
		doc, err = e.coder.Decode(base, delta)
	}
	if err != nil {
		return nil, fmt.Errorf("core: apply delta: %w", err)
	}
	return doc, nil
}

// GroupingStats exposes the classifier's statistics in class-based mode.
// ok is false in classless modes.
func (e *Engine) GroupingStats() (classify.Stats, bool) {
	if e.classify == nil {
		return classify.Stats{}, false
	}
	return e.classify.Stats(), true
}
