package gzipx

import (
	"bytes"
	"testing"

	"cbde/internal/testutil"
)

// Allocation budgets for the pooled gzip paths, asserted with
// testing.AllocsPerRun so a pooling regression fails `go test ./...`.
// Compress allocates exactly its returned buffer (budget 2 allows a pool
// refill after GC); AppendCompress into sufficient capacity and
// CompressedSize allocate nothing; Decompress allocates only the inflated
// output, which io.ReadAll grows in O(log n) steps (~13 for a 28 KB
// document), so its budget guards the pooled reader, not output growth.
const (
	compressAllocBudget       = 2
	appendCompressAllocBudget = 0.5
	compressedSizeAllocBudget = 0.5
	decompressAllocBudget     = 18
)

func benchPayload() []byte {
	return bytes.Repeat([]byte("dynamic document content, mildly compressible; "), 600) // ~28 KB
}

func TestCompressAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	data := benchPayload()
	for i := 0; i < 3; i++ {
		Compress(data)
	}
	allocs := testing.AllocsPerRun(50, func() { Compress(data) })
	if allocs > compressAllocBudget {
		t.Errorf("Compress allocates %.1f objects/op, budget %d", allocs, compressAllocBudget)
	}
}

func TestAppendCompressAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	data := benchPayload()
	dst := make([]byte, 0, len(data))
	for i := 0; i < 3; i++ {
		dst = AppendCompress(dst[:0], data)
	}
	allocs := testing.AllocsPerRun(50, func() { dst = AppendCompress(dst[:0], data) })
	if allocs > appendCompressAllocBudget {
		t.Errorf("AppendCompress allocates %.1f objects/op with capacity, budget %.1f",
			allocs, appendCompressAllocBudget)
	}
}

func TestCompressedSizeAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	data := benchPayload()
	for i := 0; i < 3; i++ {
		CompressedSize(data)
	}
	allocs := testing.AllocsPerRun(50, func() { CompressedSize(data) })
	if allocs > compressedSizeAllocBudget {
		t.Errorf("CompressedSize allocates %.1f objects/op, budget %.1f",
			allocs, compressedSizeAllocBudget)
	}
}

func TestDecompressAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	c := Compress(benchPayload())
	for i := 0; i < 3; i++ {
		if _, err := Decompress(c); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Decompress(c); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > decompressAllocBudget {
		t.Errorf("Decompress allocates %.1f objects/op, budget %d", allocs, decompressAllocBudget)
	}
}
