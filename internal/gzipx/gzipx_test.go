package gzipx

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	tests := [][]byte{
		nil,
		[]byte(""),
		[]byte("x"),
		[]byte("hello world hello world hello world"),
		bytes.Repeat([]byte("compressible content "), 1000),
		{0x00, 0xff, 0x80, 0x7f},
	}
	for i, data := range tests {
		c := Compress(data)
		got, err := Decompress(c)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("case %d: round trip mismatch", i)
		}
	}
}

func TestCompressShrinksRedundantData(t *testing.T) {
	data := bytes.Repeat([]byte("The quick brown fox jumps over the lazy dog. "), 500)
	c := Compress(data)
	if len(c) >= len(data)/5 {
		t.Errorf("compressed %d -> %d, want at least 5x reduction", len(data), len(c))
	}
}

func TestDecompressGarbage(t *testing.T) {
	if _, err := Decompress([]byte("not gzip at all")); err == nil {
		t.Error("expected error for non-gzip input")
	}
	if _, err := Decompress(nil); err == nil {
		t.Error("expected error for empty input")
	}
	// Truncated stream.
	c := Compress(bytes.Repeat([]byte("data"), 100))
	if _, err := Decompress(c[:len(c)/2]); err == nil {
		t.Error("expected error for truncated stream")
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(nil); r != 1 {
		t.Errorf("Ratio(nil) = %v, want 1", r)
	}
	data := bytes.Repeat([]byte("abcabcabc"), 1000)
	if r := Ratio(data); r < 5 {
		t.Errorf("Ratio(redundant) = %v, want > 5", r)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		got, err := Decompress(Compress(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentUse(t *testing.T) {
	data := bytes.Repeat([]byte("concurrent pool exercise "), 200)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				got, err := Decompress(Compress(data))
				if err != nil || !bytes.Equal(got, data) {
					t.Errorf("concurrent round trip failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
