// Package gzipx wraps compress/gzip with pooled writers and readers.
//
// The paper compresses every delta with gzip before shipping it (Section
// VI-A, footnote 8); roughly a factor of 2 of the reported savings comes
// from compression. The delta-server compresses and decompresses on every
// request, so all per-call codec state — writer, reader, byte source and
// sink — is pooled; the only steady-state allocation is the result handed
// to the caller.
package gzipx

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sync"
)

// sliceWriter appends everything written to it to buf. It is the pooled
// sink that lets AppendCompress build output without a bytes.Buffer.
type sliceWriter struct {
	buf []byte
}

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}

// compressor bundles a gzip.Writer with its slice sink so one pool Get
// yields everything a compression call needs.
type compressor struct {
	sink sliceWriter
	zw   *gzip.Writer
}

var compressorPool = sync.Pool{
	New: func() any {
		c := &compressor{}
		zw, err := gzip.NewWriterLevel(&c.sink, gzip.BestCompression)
		if err != nil {
			// Only reachable with an invalid level constant.
			panic(fmt.Sprintf("gzipx: NewWriterLevel: %v", err))
		}
		c.zw = zw
		return c
	},
}

// Compress returns the gzip compression of data at BestCompression level.
// The result is freshly allocated and owned by the caller.
func Compress(data []byte) []byte {
	return AppendCompress(make([]byte, 0, len(data)/3+64), data)
}

// AppendCompress appends the gzip compression of data (BestCompression
// level) to dst and returns the extended slice, growing it as needed. It
// allocates nothing when dst has sufficient capacity, which lets request
// loops compress into recycled buffers.
func AppendCompress(dst, data []byte) []byte {
	c := compressorPool.Get().(*compressor)
	c.sink.buf = dst
	c.zw.Reset(&c.sink)
	// Writes to the slice sink cannot fail.
	_, _ = c.zw.Write(data)
	_ = c.zw.Close()
	out := c.sink.buf
	c.sink.buf = nil // do not retain caller memory in the pool
	compressorPool.Put(c)
	return out
}

// countWriter discards writes, counting them.
type countWriter struct {
	n int
}

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

// sizer is the pooled state behind CompressedSize: a gzip.Writer whose sink
// only counts, so sizing a compression materializes no output at all.
type sizer struct {
	sink countWriter
	zw   *gzip.Writer
}

var sizerPool = sync.Pool{
	New: func() any {
		s := &sizer{}
		zw, err := gzip.NewWriterLevel(&s.sink, gzip.BestCompression)
		if err != nil {
			panic(fmt.Sprintf("gzipx: NewWriterLevel: %v", err))
		}
		s.zw = zw
		return s
	},
}

// CompressedSize returns len(Compress(data)) without materializing the
// compressed bytes. Use it when only the size matters (ratio reporting,
// admission decisions); it allocates nothing in steady state.
func CompressedSize(data []byte) int {
	s := sizerPool.Get().(*sizer)
	s.sink.n = 0
	s.zw.Reset(&s.sink)
	_, _ = s.zw.Write(data)
	_ = s.zw.Close()
	n := s.sink.n
	sizerPool.Put(s)
	return n
}

// decompressor bundles a gzip.Reader with its byte source so Decompress
// performs no per-call reader allocations.
type decompressor struct {
	src bytes.Reader
	zr  gzip.Reader
}

var decompressorPool = sync.Pool{
	New: func() any { return new(decompressor) },
}

// Decompress inflates gzip-compressed data. The result is freshly allocated
// and owned by the caller.
func Decompress(data []byte) ([]byte, error) {
	d := decompressorPool.Get().(*decompressor)
	defer func() {
		d.src.Reset(nil) // do not retain caller memory in the pool
		decompressorPool.Put(d)
	}()
	d.src.Reset(data)
	if err := d.zr.Reset(&d.src); err != nil {
		return nil, fmt.Errorf("gzipx: open stream: %w", err)
	}
	out, err := io.ReadAll(&d.zr)
	if cerr := d.zr.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("gzipx: inflate: %w", err)
	}
	return out, nil
}

// Ratio returns the compression ratio original/compressed for data, or 1 for
// empty input. It is a convenience for experiment reporting and never
// materializes the compressed bytes.
func Ratio(data []byte) float64 {
	if len(data) == 0 {
		return 1
	}
	c := CompressedSize(data)
	if c == 0 {
		return 1
	}
	return float64(len(data)) / float64(c)
}
