// Package gzipx wraps compress/gzip with pooled writers and readers.
//
// The paper compresses every delta with gzip before shipping it (Section
// VI-A, footnote 8); roughly a factor of 2 of the reported savings comes
// from compression. The delta-server compresses on every request, so writer
// reuse matters.
package gzipx

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sync"
)

var writerPool = sync.Pool{
	New: func() any {
		w, err := gzip.NewWriterLevel(io.Discard, gzip.BestCompression)
		if err != nil {
			// Only reachable with an invalid level constant.
			panic(fmt.Sprintf("gzipx: NewWriterLevel: %v", err))
		}
		return w
	},
}

// Compress returns the gzip compression of data at BestCompression level.
func Compress(data []byte) []byte {
	w := writerPool.Get().(*gzip.Writer)
	defer writerPool.Put(w)

	var buf bytes.Buffer
	buf.Grow(len(data)/3 + 64)
	w.Reset(&buf)
	// Writes to a bytes.Buffer cannot fail.
	_, _ = w.Write(data)
	_ = w.Close()
	return buf.Bytes()
}

// Decompress inflates gzip-compressed data.
func Decompress(data []byte) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("gzipx: open stream: %w", err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("gzipx: inflate: %w", err)
	}
	return out, nil
}

// Ratio returns the compression ratio original/compressed for data, or 1 for
// empty input. It is a convenience for experiment reporting.
func Ratio(data []byte) float64 {
	if len(data) == 0 {
		return 1
	}
	c := Compress(data)
	if len(c) == 0 {
		return 1
	}
	return float64(len(data)) / float64(len(c))
}
