//go:build !race

// Package testutil holds small helpers shared by test files across packages.
package testutil

// RaceEnabled reports whether the race detector is compiled in. Allocation-
// budget tests skip under -race: instrumentation changes allocation counts,
// and those runs assert data-race freedom, not allocation discipline.
const RaceEnabled = false
