package deltahttp

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBasePathRoundTrip(t *testing.T) {
	classes := []string{
		"www.foo.com/laptops#1",
		"simple",
		"with spaces and ü",
		"slashes/every/where#9",
		"query?&=%",
	}
	for _, id := range classes {
		for _, v := range []int{1, 7, 12345} {
			p := BasePath(id, v)
			if !strings.HasPrefix(p, BasePathPrefix) {
				t.Fatalf("BasePath(%q) = %q lacks prefix", id, p)
			}
			gotID, gotV, err := ParseBasePath(p)
			if err != nil {
				t.Fatalf("ParseBasePath(%q): %v", p, err)
			}
			if gotID != id || gotV != v {
				t.Errorf("round trip = (%q,%d), want (%q,%d)", gotID, gotV, id, v)
			}
		}
	}
}

func TestParseBasePathErrors(t *testing.T) {
	bad := []string{
		"/other/path",
		BasePathPrefix,             // no version
		BasePathPrefix + "id",      // no slash/version
		BasePathPrefix + "id/x",    // non-numeric version
		BasePathPrefix + "id/0",    // version must be positive
		BasePathPrefix + "id/-3",   // negative
		BasePathPrefix + "%zz/1",   // bad escape
		BasePathPrefix + "id/1/2x", // trailing junk in version
	}
	for _, p := range bad {
		if _, _, err := ParseBasePath(p); err == nil {
			t.Errorf("ParseBasePath(%q): expected error", p)
		}
	}
}

func TestQuickBasePathRoundTrip(t *testing.T) {
	f := func(id string, v uint16) bool {
		version := int(v)%100000 + 1
		got, gv, err := ParseBasePath(BasePath(id, version))
		return err == nil && got == id && gv == version
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFormatParseHave(t *testing.T) {
	held := []Held{
		{ClassID: "www.foo.com/laptops#1", Version: 3},
		{ClassID: "plain", Version: 1},
		{ClassID: "with, comma:and colon", Version: 12},
		{ClassID: "", Version: 5},    // dropped: empty class
		{ClassID: "neg", Version: 0}, // dropped: no version
	}
	v := FormatHave(held)
	got := ParseHave(v)
	if len(got) != 3 {
		t.Fatalf("round trip kept %d entries, want 3: %q -> %+v", len(got), v, got)
	}
	for i, want := range held[:3] {
		if got[i] != want {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want)
		}
	}
}

func TestParseHaveMalformed(t *testing.T) {
	// Garbage degrades to fewer entries, never errors.
	cases := map[string]int{
		"":                     0,
		"justtext":             0,
		":3":                   0,
		"cls:":                 0,
		"cls:abc":              0,
		"cls:-2":               0,
		"cls:2,broken,other:5": 2,
		"%zz:3":                0, // bad escape
		"  spaced%20class:7  ": 1,
	}
	for in, want := range cases {
		if got := ParseHave(in); len(got) != want {
			t.Errorf("ParseHave(%q) = %+v, want %d entries", in, got, want)
		}
	}
}

func TestAcceptsVCDIFF(t *testing.T) {
	cases := map[string]bool{
		"":                     false,
		"vdelta":               false,
		"vcdiff":               true,
		"vdelta, vcdiff":       true,
		" vcdiff ,vdelta+gzip": true,
		"vcdiff+gzip":          false, // exact token required
		"notvcdiff":            false,
	}
	for in, want := range cases {
		if got := AcceptsVCDIFF(in); got != want {
			t.Errorf("AcceptsVCDIFF(%q) = %v, want %v", in, got, want)
		}
	}
}
