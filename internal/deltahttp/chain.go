// Chained-delta payload framing (EncodingVdeltaChain).
//
// A chain payload is:
//
//	uvarint segmentCount, then per segment:
//	    one flag byte (0 raw, 1 gzip-compressed)
//	    uvarint payloadLen
//	    payloadLen bytes of vdelta instruction stream (gzipped when flagged)
//
// Segments are ordered client→current: applying segment i to the document
// produced by segment i-1 (starting from the base version named by
// X-CBDE-Base-Version) yields the next retained version's base bytes, and
// the last segment yields the requested document. The framing is pure
// stdlib so every layer — server, client, core — can share it.
package deltahttp

import (
	"encoding/binary"
	"errors"
)

// ChainSegment is one delta in a chained payload, stored exactly as framed.
type ChainSegment struct {
	Payload []byte
	Gzipped bool
}

const (
	chainSegRaw  = 0
	chainSegGzip = 1

	// maxChainSegments and maxChainSegment bound decode allocations against
	// corrupt or adversarial payloads. 255 segments is far past any sane
	// graph depth; 1 GiB per segment matches the spill codec's section cap.
	maxChainSegments = 255
	maxChainSegment  = 1 << 30
)

var errBadChain = errors.New("deltahttp: malformed chain payload")

// AppendChain frames segs into dst and returns the extended slice.
func AppendChain(dst []byte, segs []ChainSegment) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(segs)))
	for _, s := range segs {
		flag := byte(chainSegRaw)
		if s.Gzipped {
			flag = chainSegGzip
		}
		dst = append(dst, flag)
		dst = binary.AppendUvarint(dst, uint64(len(s.Payload)))
		dst = append(dst, s.Payload...)
	}
	return dst
}

// ParseChain decodes a chain payload. Segment payloads alias the input
// buffer; callers that outlive it must copy. Trailing garbage, truncated
// segments, unknown flags, and absurd counts are all errors — a confused
// client must fail closed and refetch, never apply a half-parsed chain.
func ParseChain(payload []byte) ([]ChainSegment, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 || count == 0 || count > maxChainSegments {
		return nil, errBadChain
	}
	rest := payload[n:]
	segs := make([]ChainSegment, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(rest) < 1 {
			return nil, errBadChain
		}
		flag := rest[0]
		if flag != chainSegRaw && flag != chainSegGzip {
			return nil, errBadChain
		}
		rest = rest[1:]
		segLen, n := binary.Uvarint(rest)
		if n <= 0 || segLen > maxChainSegment || segLen > uint64(len(rest)-n) {
			return nil, errBadChain
		}
		rest = rest[n:]
		segs = append(segs, ChainSegment{Payload: rest[:segLen], Gzipped: flag == chainSegGzip})
		rest = rest[segLen:]
	}
	if len(rest) != 0 {
		return nil, errBadChain
	}
	return segs, nil
}
