package deltahttp

import (
	"bytes"
	"testing"
)

func TestChainRoundTrip(t *testing.T) {
	want := []ChainSegment{
		{Payload: []byte("edge one"), Gzipped: true},
		{Payload: []byte{}, Gzipped: false},
		{Payload: bytes.Repeat([]byte("tip"), 100), Gzipped: false},
	}
	framed := AppendChain(nil, want)
	got, err := ParseChain(framed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d segments, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Gzipped != want[i].Gzipped || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("segment %d mismatch", i)
		}
	}
}

func TestChainRejectsMalformed(t *testing.T) {
	framed := AppendChain(nil, []ChainSegment{
		{Payload: []byte("first"), Gzipped: false},
		{Payload: []byte("second"), Gzipped: true},
	})
	cases := map[string][]byte{
		"empty":            nil,
		"zero count":       {0},
		"huge count":       {0xFF, 0xFF, 0x10},
		"bad flag":         {1, 7, 0},
		"truncated length": {1, 0},
		"short segment":    {1, 0, 10, 'a', 'b'},
		"trailing garbage": append(append([]byte{}, framed...), 'x'),
	}
	for name, in := range cases {
		if segs, err := ParseChain(in); err == nil {
			t.Fatalf("%s: parsed without error (%d segments)", name, len(segs))
		}
	}
	// Every proper prefix of a valid framing must error: a prefix that
	// happens to contain fewer complete segments still fails the
	// count/trailing-bytes checks.
	for n := 0; n < len(framed); n++ {
		if _, err := ParseChain(framed[:n]); err == nil {
			t.Fatalf("truncation to %d bytes parsed without error", n)
		}
	}
}
