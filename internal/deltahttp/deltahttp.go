// Package deltahttp defines the wire protocol between the delta-server and
// delta-capable clients (Section VI-C, Figure 2).
//
// The scheme is transparent: clients that do not send HeaderCapable receive
// ordinary full responses; proxy-caches see base-files as plain cachable
// HTTP objects; web-servers see ordinary requests. Delta-capable clients
// advertise the base-file they hold and receive either a delta against it
// or a full response that names the class and base version to fetch.
package deltahttp

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
)

// Request headers sent by delta-capable clients.
const (
	// HeaderCapable marks the client as delta-capable ("1").
	HeaderCapable = "X-CBDE-Capable"
	// HeaderHaveClass names the class whose base-file the client holds.
	HeaderHaveClass = "X-CBDE-Have-Class"
	// HeaderHaveVersion is the version of the held base-file.
	HeaderHaveVersion = "X-CBDE-Have-Version"
	// HeaderHave lists every base-file the client holds for this server,
	// as comma-separated "<escaped-class>:<version>" pairs. A client
	// cannot know which class an unseen URL belongs to, so it advertises
	// all of them; the server picks the matching one.
	HeaderHave = "X-CBDE-Have"
	// HeaderUser carries the user identity (the cookie stand-in).
	HeaderUser = "X-CBDE-User"
	// HeaderAccept lists the delta encodings the client can decode
	// (comma-separated HeaderEncoding values). Absent means vdelta.
	HeaderAccept = "X-CBDE-Accept"
)

// Response headers set by the delta-server.
const (
	// HeaderClass names the document's class.
	HeaderClass = "X-CBDE-Class"
	// HeaderBaseVersion is the base-file version a delta was encoded
	// against.
	HeaderBaseVersion = "X-CBDE-Base-Version"
	// HeaderLatestVersion is the newest distributable base-file version;
	// clients holding older versions should refresh from the base path.
	HeaderLatestVersion = "X-CBDE-Latest-Version"
	// HeaderEncoding describes the payload encoding of a delta response.
	HeaderEncoding = "X-CBDE-Encoding"
	// HeaderChainLength is the number of segments in an EncodingVdeltaChain
	// payload (informational; the framing is self-describing).
	HeaderChainLength = "X-CBDE-Chain-Length"
)

// Cluster headers.
const (
	// HeaderForwarded carries the node ID of the peer that forwarded a
	// request to this node — the one-hop guard. A request already bearing
	// it is never forwarded again, regardless of ownership, which bounds
	// every request to at most one intra-tier hop even when peers briefly
	// disagree about membership.
	HeaderForwarded = "X-CBDE-Forwarded"
	// HeaderTrace carries the distributed trace context —
	// "<32-hex trace ID>;o=<origin node>;h=<hop>" — minted by the first
	// node a request reaches and propagated through forwards, redirects,
	// and peer base fetches so every node's flight-recorder entries for one
	// request join on the same trace ID. Also echoed on document responses
	// so clients (and cbdestat) learn the ID to look up.
	HeaderTrace = "X-CBDE-Trace"
)

// HeaderEncoding values.
const (
	// EncodingVdelta is a raw vdelta instruction stream.
	EncodingVdelta = "vdelta"
	// EncodingVdeltaGzip is a gzip-compressed vdelta stream.
	EncodingVdeltaGzip = "vdelta+gzip"
	// EncodingVCDIFF is an RFC 3284 VCDIFF stream.
	EncodingVCDIFF = "vcdiff"
	// EncodingVCDIFFGzip is a gzip-compressed VCDIFF stream.
	EncodingVCDIFFGzip = "vcdiff+gzip"
	// EncodingVdeltaChain is a framed sequence of vdelta deltas (see
	// AppendChain) the client applies in order: segment 1 rewrites the held
	// base to the next retained version, and so on up the class's version
	// graph; the final segment rewrites the newest base into the document.
	EncodingVdeltaChain = "vdelta-chain"
)

// AcceptsVCDIFF reports whether an HeaderAccept value includes VCDIFF.
func AcceptsVCDIFF(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		if strings.TrimSpace(part) == EncodingVCDIFF {
			return true
		}
	}
	return false
}

// Server-side paths.
const (
	// BasePathPrefix prefixes the cachable base-file distribution
	// endpoint: GET /_cbde/base/<escaped-class>/<version>.
	BasePathPrefix = "/_cbde/base/"
	// StatsPath serves the delta-server's stats snapshot: a plain-text
	// counter dump by default, or per-class JSON rows with ?class=<id>
	// (?class=* for every class).
	StatsPath = "/_cbde/stats"
	// MetricsPath serves the registry as Prometheus text exposition
	// (version 0.0.4), the endpoint a real scraper points at.
	MetricsPath = "/_cbde/metrics"
	// StorePath serves the storage-governance snapshot as JSON: byte
	// budget, resident bytes by kind, resident versus tracked classes,
	// prune/evict counters, and the recent eviction log.
	StorePath = "/_cbde/store"
	// HealthPath answers 200 while the server is able to take traffic;
	// the cluster prober polls it to drive failover.
	HealthPath = "/_cbde/health"
	// ClusterPath serves the node's cluster view as JSON: membership with
	// liveness, owned-class share, and forward/redirect counters. 404 when
	// the server runs standalone.
	ClusterPath = "/_cbde/cluster"
	// TracePath serves the node's flight-recorder ring as NDJSON, newest
	// first: one compact record per recent request, with full per-stage
	// span detail on tail-sampled outliers. Filterable with ?class=,
	// ?min-ms=, ?outcome=, ?trace=. 404 when the recorder is disabled.
	TracePath = "/_cbde/trace"
)

// Held is one (class, version) pair a client advertises.
type Held struct {
	ClassID string
	Version int
}

// FormatHave renders held base-files as a HeaderHave value.
func FormatHave(held []Held) string {
	parts := make([]string, 0, len(held))
	for _, h := range held {
		if h.ClassID == "" || h.Version <= 0 {
			continue
		}
		parts = append(parts, url.QueryEscape(h.ClassID)+":"+strconv.Itoa(h.Version))
	}
	return strings.Join(parts, ",")
}

// ParseHave parses a HeaderHave value. Malformed entries are skipped: a
// client advertising garbage degrades to full responses, never to an error.
func ParseHave(value string) []Held {
	if value == "" {
		return nil
	}
	var out []Held
	for _, part := range strings.Split(value, ",") {
		part = strings.TrimSpace(part)
		colon := strings.LastIndexByte(part, ':')
		if colon <= 0 {
			continue
		}
		id, err := url.QueryUnescape(part[:colon])
		if err != nil {
			continue
		}
		v, err := strconv.Atoi(part[colon+1:])
		if err != nil || v <= 0 {
			continue
		}
		out = append(out, Held{ClassID: id, Version: v})
	}
	return out
}

// BasePath returns the distribution path for a class's base-file version.
func BasePath(classID string, version int) string {
	return BasePathPrefix + url.PathEscape(classID) + "/" + strconv.Itoa(version)
}

// ParseBasePath extracts (classID, version) from a base distribution path.
func ParseBasePath(path string) (classID string, version int, err error) {
	rest, ok := strings.CutPrefix(path, BasePathPrefix)
	if !ok {
		return "", 0, fmt.Errorf("deltahttp: %q is not a base path", path)
	}
	slash := strings.LastIndexByte(rest, '/')
	if slash < 0 {
		return "", 0, fmt.Errorf("deltahttp: base path %q lacks a version", path)
	}
	id, err := url.PathUnescape(rest[:slash])
	if err != nil {
		return "", 0, fmt.Errorf("deltahttp: unescape class in %q: %w", path, err)
	}
	v, err := strconv.Atoi(rest[slash+1:])
	if err != nil || v <= 0 {
		return "", 0, fmt.Errorf("deltahttp: bad version in %q", path)
	}
	return id, v, nil
}
