package cbde_test

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"cbde"
	"cbde/internal/origin"
)

// newFacadeChain wires the full deployment through the public facade only.
func newFacadeChain(t *testing.T) (*origin.Site, *cbde.Engine, string) {
	t.Helper()
	site := origin.NewSite(origin.Config{
		Host:          "www.facade.com",
		Depts:         []origin.Dept{{Name: "catalog", Items: 6}},
		TemplateBytes: 9000,
		ItemBytes:     900,
		ChurnBytes:    300,
		Personalized:  true,
		Seed:          12,
	})
	originSrv := httptest.NewServer(site.Handler())
	t.Cleanup(originSrv.Close)

	base := time.Unix(5_000_000, 0)
	n := 0
	eng, err := cbde.NewEngine(cbde.Config{
		Now: func() time.Time { n++; return base.Add(time.Duration(n) * time.Second) },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cbde.NewServer(originSrv.URL, eng, cbde.WithPublicHost("www.facade.com"))
	if err != nil {
		t.Fatal(err)
	}
	srvHTTP := httptest.NewServer(srv)
	t.Cleanup(srvHTTP.Close)

	proxy, err := cbde.NewProxyCache(srvHTTP.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxyHTTP := httptest.NewServer(proxy)
	t.Cleanup(proxyHTTP.Close)
	return site, eng, proxyHTTP.URL
}

func TestFacadeEndToEnd(t *testing.T) {
	site, eng, url := newFacadeChain(t)

	for i := 0; i < 8; i++ {
		cl := cbde.NewClient(url, cbde.WithUser(fmt.Sprintf("warm-%d", i)))
		if _, err := cl.Get("/catalog/0"); err != nil {
			t.Fatal(err)
		}
	}
	cl := cbde.NewClient(url, cbde.WithUser("alice"))
	if _, err := cl.Get("/catalog/0"); err != nil {
		t.Fatal(err)
	}
	doc, err := cl.Get("/catalog/0")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := site.Render("catalog", 0, "alice", site.Tick())
	if !bytes.Equal(doc, want) {
		t.Error("facade chain reconstruction mismatch")
	}
	if cl.Stats().DeltaResponses == 0 {
		t.Error("no deltas through the facade chain")
	}
	st := eng.Stats()
	if st.Mode != cbde.ModeClassBased {
		t.Errorf("mode = %v", st.Mode)
	}
	if st.Requests == 0 || st.Savings() <= 0 {
		t.Errorf("stats not accumulating: %+v", st)
	}
}

func TestFacadeEngineDirect(t *testing.T) {
	eng, err := cbde.NewEngine(cbde.Config{Mode: cbde.ModeClassless})
	if err != nil {
		t.Fatal(err)
	}
	doc := bytes.Repeat([]byte("a dynamic document body line\n"), 100)
	resp, err := eng.Process(cbde.Request{URL: "www.x.com/a/1", UserID: "u", Doc: doc})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != cbde.KindFull {
		t.Errorf("first response kind = %v", resp.Kind)
	}
	resp2, err := eng.Process(cbde.Request{
		URL: "www.x.com/a/1", UserID: "u", Doc: append(doc, " changed"...),
		Held: []cbde.HeldBase{{ClassID: resp.ClassID, Version: resp.LatestVersion}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Kind != cbde.KindDelta {
		t.Fatalf("second response kind = %v", resp2.Kind)
	}
	base, _ := eng.BaseFile(resp.ClassID, resp2.BaseVersion)
	got, err := eng.Decode(base, resp2.Payload, resp2.Gzipped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append(doc, " changed"...)) {
		t.Error("facade decode mismatch")
	}
}

// TestServerRestartRecovery models a delta-server losing its in-memory
// state (restart): clients holding now-unknown bases must degrade to full
// responses and then re-converge to deltas.
func TestServerRestartRecovery(t *testing.T) {
	site := origin.NewSite(origin.Config{
		Host:          "www.restart.com",
		Depts:         []origin.Dept{{Name: "catalog", Items: 3}},
		TemplateBytes: 6000,
		Seed:          3,
	})
	originSrv := httptest.NewServer(site.Handler())
	t.Cleanup(originSrv.Close)

	mkServer := func() *httptest.Server {
		base := time.Unix(9_000_000, 0)
		n := 0
		eng, err := cbde.NewEngine(cbde.Config{
			Now: func() time.Time { n++; return base.Add(time.Duration(n) * time.Second) },
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := cbde.NewServer(originSrv.URL, eng, cbde.WithPublicHost("www.restart.com"))
		if err != nil {
			t.Fatal(err)
		}
		return httptest.NewServer(srv)
	}

	first := mkServer()
	for i := 0; i < 8; i++ {
		cl := cbde.NewClient(first.URL, cbde.WithUser(fmt.Sprintf("w%d", i)))
		if _, err := cl.Get("/catalog/0"); err != nil {
			t.Fatal(err)
		}
	}
	cl := cbde.NewClient(first.URL, cbde.WithUser("survivor"))
	if _, err := cl.Get("/catalog/0"); err != nil {
		t.Fatal(err)
	}
	first.Close()

	// "Restart": a fresh engine with empty state behind a new listener.
	second := mkServer()
	defer second.Close()
	cl2 := cbde.NewClient(second.URL, cbde.WithUser("survivor"))
	doc, err := cl2.Get("/catalog/0")
	if err != nil {
		t.Fatalf("request against restarted server failed: %v", err)
	}
	want, _ := site.Render("catalog", 0, "survivor", site.Tick())
	if !bytes.Equal(doc, want) {
		t.Error("document wrong after restart")
	}
	// Warm the new instance; deltas must flow again.
	for i := 0; i < 8; i++ {
		wcl := cbde.NewClient(second.URL, cbde.WithUser(fmt.Sprintf("n%d", i)))
		if _, err := wcl.Get("/catalog/0"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl2.Get("/catalog/0"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.Get("/catalog/0"); err != nil {
		t.Fatal(err)
	}
	if cl2.Stats().DeltaResponses == 0 {
		t.Error("client never re-converged to deltas after restart")
	}
}

// TestServerRestartWithPersistedState is the persistence counterpart of
// TestServerRestartRecovery: with SaveState/LoadState across the restart,
// clients holding base-files keep receiving deltas immediately — no
// re-warmup, no base re-downloads.
func TestServerRestartWithPersistedState(t *testing.T) {
	site := origin.NewSite(origin.Config{
		Host:          "www.persist.com",
		Depts:         []origin.Dept{{Name: "catalog", Items: 3}},
		TemplateBytes: 6000,
		Seed:          4,
	})
	originSrv := httptest.NewServer(site.Handler())
	t.Cleanup(originSrv.Close)

	mkEngine := func() *cbde.Engine {
		base := time.Unix(8_000_000, 0)
		n := 0
		eng, err := cbde.NewEngine(cbde.Config{
			Now: func() time.Time { n++; return base.Add(time.Duration(n) * time.Second) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	mkServer := func(eng *cbde.Engine) *httptest.Server {
		srv, err := cbde.NewServer(originSrv.URL, eng, cbde.WithPublicHost("www.persist.com"))
		if err != nil {
			t.Fatal(err)
		}
		return httptest.NewServer(srv)
	}

	engA := mkEngine()
	first := mkServer(engA)
	for i := 0; i < 8; i++ {
		cl := cbde.NewClient(first.URL, cbde.WithUser(fmt.Sprintf("w%d", i)))
		if _, err := cl.Get("/catalog/0"); err != nil {
			t.Fatal(err)
		}
	}
	cl := cbde.NewClient(first.URL, cbde.WithUser("keeper"))
	if _, err := cl.Get("/catalog/0"); err != nil {
		t.Fatal(err)
	}
	basesBefore := cl.Stats().BaseFetches

	var state bytes.Buffer
	if err := engA.SaveState(&state); err != nil {
		t.Fatal(err)
	}
	first.Close()

	engB := mkEngine()
	if err := engB.LoadState(&state); err != nil {
		t.Fatal(err)
	}
	second := mkServer(engB)
	defer second.Close()

	// Point the same client (still holding its base) at the new instance.
	cl2 := cbde.NewClient(second.URL, cbde.WithUser("keeper"))
	// Transplant nothing: cl2 is fresh, so fetch once; the important part
	// is the original client's held base still being honored. Re-use cl by
	// swapping URLs is not supported, so verify via raw engine semantics:
	// the restored engine still advertises the same class and version.
	doc, err := cl2.Get("/catalog/0")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := site.Render("catalog", 0, "keeper", site.Tick())
	if !bytes.Equal(doc, want) {
		t.Error("restored server returned a wrong document")
	}
	// Delta on the very next request: state carried over, no re-warmup.
	if _, err := cl2.Get("/catalog/0"); err != nil {
		t.Fatal(err)
	}
	if cl2.Stats().DeltaResponses == 0 {
		t.Error("restored server did not serve deltas immediately")
	}
	_ = basesBefore
}
