// Cluster-tier scaling benchmark: aggregate throughput and the full-
// response fraction (the serving analogue of the paper's P_error — the
// probability a request cannot be served by delta) for rendezvous-
// partitioned delta-server tiers of 1, 2, and 4 nodes over one origin,
// plus the modeled per-response modem transfer time via internal/netsim.
// CI archives the numbers as BENCH_cluster.json via cmd/benchreport.
package cbde_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/cluster"
	"cbde/internal/core"
	"cbde/internal/deltaserver"
	"cbde/internal/loadgen"
	"cbde/internal/netsim"
	"cbde/internal/origin"
)

// clusterBenchSite is the Table I-style workload: a path-segment site with
// department catalogs and personalized churn, the same shape the smoke and
// integration runs use.
func clusterBenchSite() *origin.Site {
	return origin.NewSite(origin.Config{
		Host:  "www.site1.com",
		Style: origin.StylePathSegments,
		Depts: []origin.Dept{
			{Name: "laptops", Items: 8},
			{Name: "desktops", Items: 8},
		},
		TemplateBytes: 12000,
		ItemBytes:     1200,
		ChurnBytes:    500,
		Personalized:  true,
		Seed:          42,
	})
}

// runClusterTier boots an n-node tier over one origin, sprays delta-capable
// clients across every node, and returns the load result.
func runClusterTier(b *testing.B, nodes int) loadgen.Result {
	b.Helper()
	site := clusterBenchSite()
	originSrv := httptest.NewServer(site.Handler())
	defer originSrv.Close()

	servers := make([]*deltaserver.Server, nodes)
	fronts := make([]*httptest.Server, nodes)
	urls := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		fronts[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			servers[i].ServeHTTP(w, r)
		}))
		defer fronts[i].Close()
		urls[i] = fronts[i].URL
	}
	peers := make([]cluster.Node, nodes)
	for i := range peers {
		peers[i] = cluster.Node{ID: fmt.Sprintf("node-%d", i), URL: urls[i]}
	}
	for i := 0; i < nodes; i++ {
		cl, err := cluster.New(cluster.Config{Self: peers[i].ID, Peers: peers})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := core.NewEngine(core.Config{
			Anon: anonymize.Config{M: 1, N: 2},
			Selector: basefile.Config{
				AsyncSampling: true,
				VersionStride: cl.Size(),
				VersionOffset: cl.SelfIndex(),
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		servers[i], err = deltaserver.New(originSrv.URL, eng,
			deltaserver.WithPublicHost("www.site1.com"), deltaserver.WithCluster(cl))
		if err != nil {
			b.Fatal(err)
		}
	}

	res, err := loadgen.Run(loadgen.Config{
		ServerURLs: urls,
		Paths: []string{
			"/laptops/0", "/laptops/1", "/laptops/2", "/laptops/3",
			"/desktops/0", "/desktops/1", "/desktops/2", "/desktops/3",
		},
		Clients:           4 * nodes,
		RequestsPerClient: 25,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkClusterScaling reports, per tier size: aggregate req/s across
// the whole tier, P_error (fraction of responses that had to ship the full
// document because no usable base was held), and the netsim-modeled 56k
// transfer time of the mean response payload.
func BenchmarkClusterScaling(b *testing.B) {
	modem := netsim.Modem56k()
	for _, nodes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var res loadgen.Result
			for n := 0; n < b.N; n++ {
				res = runClusterTier(b, nodes)
			}
			responses := res.DeltaResponses + res.FullResponses
			if responses == 0 {
				b.Fatal("no responses measured")
			}
			b.ReportMetric(res.RPS(), "req/s")
			b.ReportMetric(float64(res.FullResponses)/float64(responses), "P_error")
			meanPayload := int(res.PayloadBytes) / responses
			b.ReportMetric(float64(modem.TransferLatency(meanPayload).Milliseconds()), "modem-ms/resp")
		})
	}
}
