// Command deltaserver runs the transparent delta-server of Figure 2 in
// front of an origin web-server.
//
// Usage:
//
//	deltaserver -addr :8080 -origin http://localhost:8081 -public-host www.site1.com
//
// Delta-capable clients (cmd-internal or the deltaclient package) receive
// gzipped vdelta payloads; everyone else receives documents unchanged.
// Stats are at /_cbde/stats; class base-files at /_cbde/base/<class>/<v>.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/classify"
	"cbde/internal/cluster"
	"cbde/internal/core"
	"cbde/internal/deltahttp"
	"cbde/internal/deltaserver"
	"cbde/internal/flightrec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatalf("deltaserver: %v", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("deltaserver", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		originURL  = fs.String("origin", "http://localhost:8081", "origin web-server URL")
		publicHost = fs.String("public-host", "", "host used as server-part for grouping (default: request Host)")
		mode       = fs.String("mode", "class-based", "mode: class-based | classless | classless-per-user")

		maxProbes = fs.Int("probes", 8, "grouping: max candidate classes probed (N)")
		popular   = fs.Float64("popular-fraction", 0.75, "grouping: fraction of probes on popular classes (a)")
		threshold = fs.Float64("match-threshold", 0.35, "grouping: max delta/doc ratio for a match")

		sampleProb = fs.Float64("sample-prob", 0.2, "selection: candidate sampling probability (p)")
		maxSamples = fs.Int("samples", 8, "selection: stored candidates (K)")
		rebaseTO   = fs.Duration("rebase-timeout", 10*time.Minute, "selection: min interval between group-rebases")

		anonM = fs.Int("anon-m", 2, "anonymization: min distinct users per kept chunk (M); 0 disables privacy")
		anonN = fs.Int("anon-n", 5, "anonymization: distinct-user comparisons required (N)")

		maxDeltaRatio = fs.Float64("max-delta-ratio", 0.5, "basic-rebase when delta exceeds this fraction of the doc")

		memBudget  = fs.String("mem-budget", "", "class-storage byte budget with optional k/m/g suffix (e.g. 64m); empty = unbudgeted")
		spillDir   = fs.String("spill-dir", "", "spill evicted classes to compact binary segments in this directory and fault them back in on demand; empty = disabled")
		diskBudget = fs.String("disk-budget", "", "disk-tier byte budget with optional k/m/g suffix; oldest spill segments are dropped when exceeded (with -spill-dir; empty = unbounded)")

		deltaCache        = fs.Bool("delta-cache", true, "memoize encoded deltas per class with singleflight coalescing")
		deltaCacheEntries = fs.Int("delta-cache-entries", 0, "max memoized deltas per class (0 = default 256)")

		graphDepth = fs.Int("graph-depth", 0, "version graph: retained base versions per class, served via direct or chained deltas (0 = default 2; 1 = no edges)")

		stateFile = fs.String("state", "", "persist engine state to this file (load at start, save on shutdown)")
		stateSave = fs.Duration("state-save-every", 5*time.Minute, "periodic state-save interval (with -state)")

		nodeID          = fs.String("node-id", "", "cluster: this node's ID (must appear in -peers)")
		peersFlag       = fs.String("peers", "", "cluster: full membership as id=url,... (e.g. a=http://10.0.0.1:8080,b=http://10.0.0.2:8080); empty = standalone")
		clusterRedirect = fs.Bool("cluster-redirect", false, "cluster: 307-redirect non-owned requests to the owner instead of proxy-forwarding")
		probeInterval   = fs.Duration("probe-interval", time.Second, "cluster: peer health-probe interval")
		probeFail       = fs.Int("probe-fail", 3, "cluster: consecutive probe failures that mark a peer dead")
		probeRise       = fs.Int("probe-rise", 2, "cluster: consecutive probe successes that revive a dead peer")

		trace         = fs.Bool("trace", false, "record per-stage pipeline spans (feeds cbde_stage_duration_seconds)")
		traceSampleMS = fs.Int("trace-sample-ms", 50, "flight recorder: tail-sample full span detail for requests at or over this many milliseconds (0 = sample everything)")
		traceRing     = fs.Int("trace-ring", 4096, "flight recorder: ring size in records, rounded up to a power of two (0 = disable the recorder and /_cbde/trace)")
		logRequests   = fs.Bool("log-requests", false, "emit a structured log line per document request")
		pprofAddr     = fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	m := core.ModeClassBased
	switch *mode {
	case "class-based":
	case "classless":
		m = core.ModeClassless
	case "classless-per-user":
		m = core.ModeClasslessPerUser
	default:
		log.Printf("unknown -mode %q, using class-based", *mode)
	}

	budget, err := parseBytes(*memBudget)
	if err != nil {
		return fmt.Errorf("-mem-budget: %w", err)
	}
	diskBytes, err := parseBytes(*diskBudget)
	if err != nil {
		return fmt.Errorf("-disk-budget: %w", err)
	}
	if diskBytes > 0 && *spillDir == "" {
		return fmt.Errorf("-disk-budget requires -spill-dir")
	}

	// The cluster comes up before the engine: the node's position in the
	// tier decides the engine's version-numbering stride, so two nodes can
	// never mint the same (class, version) pair.
	var clus *cluster.Cluster
	versionStride, versionOffset := 0, 0
	if *peersFlag != "" {
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			return fmt.Errorf("-peers: %w", err)
		}
		self := *nodeID
		if self == "" && len(peers) > 0 {
			return fmt.Errorf("-peers requires -node-id")
		}
		clus, err = cluster.New(cluster.Config{
			Self:          self,
			Peers:         peers,
			Redirect:      *clusterRedirect,
			ProbeInterval: *probeInterval,
			FailThreshold: *probeFail,
			RiseThreshold: *probeRise,
			HealthPath:    deltahttp.HealthPath,
			Logf:          log.Printf,
		})
		if err != nil {
			return err
		}
		versionStride = clus.Size()
		versionOffset = clus.SelfIndex()
	}

	eng, err := core.NewEngine(core.Config{
		Mode:       m,
		MemBudget:  budget,
		SpillDir:   *spillDir,
		DiskBudget: diskBytes,
		Classify: classify.Config{
			MaxProbes:       *maxProbes,
			PopularFraction: *popular,
			MatchThreshold:  *threshold,
		},
		Selector: basefile.Config{
			SampleProb:    *sampleProb,
			MaxSamples:    *maxSamples,
			RebaseTimeout: *rebaseTO,
			AsyncSampling: true,
			VersionStride: versionStride,
			VersionOffset: versionOffset,
		},
		Anon:              anonymize.Config{M: *anonM, N: *anonN},
		MaxDeltaRatio:     *maxDeltaRatio,
		DeltaCacheOff:     !*deltaCache,
		DeltaCacheEntries: *deltaCacheEntries,
		GraphDepth:        *graphDepth,
	})
	if err != nil {
		return err
	}

	eng.SetTracing(*trace)

	if *stateFile != "" {
		if err := loadState(eng, *stateFile); err != nil {
			return err
		}
	}
	if *stateFile != "" || *spillDir != "" {
		go shutdownLoop(eng, *stateFile, *spillDir, *stateSave)
	}

	var opts []deltaserver.Option
	if *publicHost != "" {
		opts = append(opts, deltaserver.WithPublicHost(*publicHost))
	}
	if *logRequests {
		opts = append(opts, deltaserver.WithRequestLog(
			slog.New(slog.NewTextHandler(os.Stderr, nil))))
	}
	// Trace contexts and flight-recorder entries name the node even when the
	// server runs standalone.
	self := *nodeID
	if self == "" {
		self = "local"
	}
	opts = append(opts, deltaserver.WithNodeID(self))
	if *traceRing > 0 {
		rec := flightrec.New(self, *traceRing, time.Duration(*traceSampleMS)*time.Millisecond)
		rec.RegisterMetrics(eng.Metrics())
		opts = append(opts, deltaserver.WithFlightRecorder(rec))
		log.Printf("deltaserver: flight recorder: %d-record ring, tail-sampling >= %dms (traces at %s)",
			rec.Len(), *traceSampleMS, deltahttp.TracePath)
	}
	if clus != nil {
		clus.RegisterMetrics(eng.Metrics())
		clus.Start()
		defer clus.Stop()
		opts = append(opts, deltaserver.WithCluster(clus))
		mode := "forward"
		if *clusterRedirect {
			mode = "redirect"
		}
		log.Printf("deltaserver: cluster node %s of %d peers (%s mode, version stride %d offset %d)",
			clus.Self().ID, clus.Size(), mode, versionStride, versionOffset)
	}
	srv, err := deltaserver.New(*originURL, eng, opts...)
	if err != nil {
		return err
	}

	if *pprofAddr != "" {
		// The pprof import registers on http.DefaultServeMux; serve that
		// mux on its own listener so profiling never shares the data port.
		go func() {
			log.Printf("deltaserver: pprof on %s", *pprofAddr)
			log.Printf("deltaserver: pprof server: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	log.Printf("deltaserver: %s mode, fronting %s on %s (stats at /_cbde/stats, metrics at /_cbde/metrics)", m, *originURL, *addr)
	if budget > 0 {
		log.Printf("deltaserver: class-storage budget %d bytes (snapshot at /_cbde/store)", budget)
	}
	if *spillDir != "" {
		ts := eng.SpillStats()
		log.Printf("deltaserver: disk tier at %s (budget %d bytes, %d classes recovered)", *spillDir, diskBytes, ts.SpilledClasses)
	}
	return http.ListenAndServe(*addr, srv)
}

// parsePeers parses the -peers flag: comma-separated id=url entries. A bare
// URL (no "=") uses the URL itself as the node ID.
func parsePeers(s string) ([]cluster.Node, error) {
	var peers []cluster.Node
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, u, found := strings.Cut(entry, "=")
		if !found {
			id, u = entry, entry
		}
		if id == "" || u == "" {
			return nil, fmt.Errorf("bad peer entry %q, want id=url", entry)
		}
		peers = append(peers, cluster.Node{ID: id, URL: strings.TrimSuffix(u, "/")})
	}
	return peers, nil
}

// parseBytes parses a byte count with an optional k/m/g suffix (powers of
// 1024, case-insensitive). Empty means 0 (unbudgeted).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte count %q", s)
	}
	return n * mult, nil
}

// loadState restores persisted engine state, tolerating a missing file
// (first start).
func loadState(eng *core.Engine, path string) error {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		log.Printf("deltaserver: no state file at %s; starting fresh", path)
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	if err := eng.LoadState(f); err != nil {
		return err
	}
	log.Printf("deltaserver: restored state from %s", path)
	return nil
}

// shutdownLoop persists NDJSON state periodically (with -state) and, on
// SIGINT/SIGTERM, flushes everything durable before exiting: the NDJSON
// snapshot if configured, and — with the disk tier on — a spill record per
// class, so the next process recovers from segment headers alone with no
// NDJSON replay.
func shutdownLoop(eng *core.Engine, statePath, spillDir string, every time.Duration) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if statePath != "" {
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-tick:
			if err := saveState(eng, statePath); err != nil {
				log.Printf("deltaserver: periodic state save: %v", err)
			}
		case s := <-sig:
			code := 0
			if statePath != "" {
				if err := saveState(eng, statePath); err != nil {
					log.Printf("deltaserver: shutdown state save: %v", err)
					code = 1
				} else {
					log.Printf("deltaserver: state saved to %s on %v", statePath, s)
				}
			}
			if spillDir != "" {
				n, err := eng.SpillAll()
				if err != nil {
					log.Printf("deltaserver: shutdown spill: %v", err)
					code = 1
				}
				log.Printf("deltaserver: spilled %d classes to %s on %v", n, spillDir, s)
			}
			if err := eng.Close(); err != nil {
				log.Printf("deltaserver: close disk tier: %v", err)
			}
			os.Exit(code)
		}
	}
}

// saveState writes state atomically via a temp file rename.
func saveState(eng *core.Engine, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := eng.SaveState(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
