package main

import (
	"os"
	"path/filepath"
	"testing"

	"cbde/internal/core"
)

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("expected flag parse error")
	}
	// A structurally invalid origin URL fails before listening.
	if err := run([]string{"-origin", "http://", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("expected error for bad origin URL")
	}
}

func TestSaveLoadStateHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")

	eng, err := core.NewEngine(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Missing file is fine on first start.
	if err := loadState(eng, path); err != nil {
		t.Fatalf("loadState(missing): %v", err)
	}
	if err := saveState(eng, path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("state file not written: %v", err)
	}
	// A fresh engine loads it back.
	eng2, err := core.NewEngine(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := loadState(eng2, path); err != nil {
		t.Fatalf("loadState(saved): %v", err)
	}
	// Corrupt file fails.
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng3, _ := core.NewEngine(core.Config{})
	if err := loadState(eng3, path); err == nil {
		t.Error("corrupt state accepted")
	}
}
