// Command benchreport converts `go test -bench -benchmem` text output into a
// machine-readable JSON report, so CI can archive benchmark numbers per
// commit and regressions can be diffed mechanically instead of eyeballed.
//
// Usage:
//
//	go test -bench 'BenchmarkDeltaGeneration$' -benchmem . | benchreport -out BENCH_encode.json
//	benchreport -in bench.txt -out BENCH_encode.json
//	benchreport -in encode.txt -in obs.txt -out BENCH_all.json
//
// -in may repeat; the inputs are parsed in order and merged into one report
// (header lines win first-come, results concatenate), so CI can fold several
// bench invocations into a single artifact.
//
// The parser understands the standard benchmark result line:
//
//	BenchmarkName-8   100   1234567 ns/op   2345 B/op   67 allocs/op   9.5 ms/delta
//
// Name suffixes from GOMAXPROCS (-8) are stripped into a separate field, and
// any custom b.ReportMetric units (ms/delta, req/s, savings%) are collected
// under "metrics". Exits nonzero if the input contains no benchmark results,
// so a silently-empty bench run fails CI instead of uploading an empty file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin); err != nil {
		log.Fatalf("benchreport: %v", err)
	}
}

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with any -GOMAXPROCS suffix removed.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (0 when the line had none).
	Procs int `json:"procs,omitempty"`
	// Runs is the iteration count (the b.N column).
	Runs int64 `json:"runs"`
	// NsPerOp, BPerOp and AllocsPerOp are the standard -benchmem columns.
	// BPerOp and AllocsPerOp are -1 when the run lacked -benchmem.
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric values keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file benchreport writes.
type Report struct {
	// Goos, Goarch and Pkg echo the header lines go test prints, when
	// present, so archived reports identify their platform.
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	Results []Result `json:"results"`
}

// inFiles collects repeated -in flags.
type inFiles []string

func (f *inFiles) String() string     { return strings.Join(*f, ",") }
func (f *inFiles) Set(v string) error { *f = append(*f, v); return nil }

func run(args []string, stdin io.Reader) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	var in inFiles
	fs.Var(&in, "in", "bench output file to parse; repeatable, inputs merge in order (default: stdin)")
	out := fs.String("out", "", "JSON report path (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var rep *Report
	if len(in) == 0 {
		var err error
		if rep, err = parse(stdin); err != nil {
			return err
		}
	} else {
		rep = &Report{}
		for _, path := range in {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			part, err := parse(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			if len(part.Results) == 0 {
				return fmt.Errorf("%s: no benchmark results found", path)
			}
			rep.merge(part)
		}
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("no benchmark results found in input")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// merge folds another parsed input into the report: header fields keep the
// first non-empty value seen, result lists concatenate in input order.
func (r *Report) merge(other *Report) {
	if r.Goos == "" {
		r.Goos = other.Goos
	}
	if r.Goarch == "" {
		r.Goarch = other.Goarch
	}
	if r.Pkg == "" {
		r.Pkg = other.Pkg
	}
	r.Results = append(r.Results, other.Results...)
}

// parse reads `go test -bench` text output and extracts every result line.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseResultLine(line)
			if !ok {
				continue // e.g. a bare "BenchmarkFoo" announcement with -v
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, sc.Err()
}

// parseResultLine parses one benchmark result line into a Result. It returns
// ok=false for lines that start with "Benchmark" but are not result lines
// (verbose-mode announcements, failures).
func parseResultLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	res := Result{
		BPerOp:      -1,
		AllocsPerOp: -1,
	}
	res.Name, res.Procs = splitProcs(fields[0])
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Runs = runs
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
	}
	return res, true
}

// splitProcs separates the -GOMAXPROCS suffix go test appends to parallel
// benchmark names. Only a purely numeric suffix after the last dash counts:
// sub-benchmark names containing dashes (Benchmark/same-class-8) keep
// everything before the final numeric segment.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 0
	}
	return name[:i], n
}
