package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: cbde
cpu: some processor
BenchmarkDeltaGeneration-8   	     100	   2985436 ns/op	         6.20 ms/delta	  904521 B/op	    8123 allocs/op
BenchmarkEngineProcessParallel/same-class-8         	     100	   1479624 ns/op	       675.9 req/s	  729658 B/op	    5263 allocs/op
BenchmarkEngineProcessParallel/cross-class-8        	     100	   1549728 ns/op	       645.3 req/s	  734332 B/op	    5341 allocs/op
BenchmarkNoMem	 1000	 123 ns/op
PASS
ok  	cbde	12.3s
`

func TestParseSample(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "cbde" {
		t.Errorf("header = %q/%q/%q, want linux/amd64/cbde", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(rep.Results))
	}

	dg := rep.Results[0]
	if dg.Name != "BenchmarkDeltaGeneration" || dg.Procs != 8 {
		t.Errorf("result 0 = %q procs=%d, want BenchmarkDeltaGeneration procs=8", dg.Name, dg.Procs)
	}
	if dg.Runs != 100 || dg.NsPerOp != 2985436 || dg.BPerOp != 904521 || dg.AllocsPerOp != 8123 {
		t.Errorf("result 0 columns = %+v", dg)
	}
	if got := dg.Metrics["ms/delta"]; got != 6.20 {
		t.Errorf("ms/delta metric = %v, want 6.20", got)
	}

	// Sub-benchmark names keep their internal dashes; only the trailing
	// numeric GOMAXPROCS segment is split off.
	same := rep.Results[1]
	if same.Name != "BenchmarkEngineProcessParallel/same-class" || same.Procs != 8 {
		t.Errorf("result 1 = %q procs=%d", same.Name, same.Procs)
	}
	if got := same.Metrics["req/s"]; got != 675.9 {
		t.Errorf("req/s metric = %v, want 675.9", got)
	}

	// A run without -benchmem marks the memory columns absent, not zero.
	nomem := rep.Results[3]
	if nomem.Name != "BenchmarkNoMem" || nomem.Procs != 0 {
		t.Errorf("result 3 = %q procs=%d, want BenchmarkNoMem procs=0", nomem.Name, nomem.Procs)
	}
	if nomem.BPerOp != -1 || nomem.AllocsPerOp != -1 {
		t.Errorf("result 3 memory columns = %v/%v, want -1/-1", nomem.BPerOp, nomem.AllocsPerOp)
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	in := `BenchmarkAnnouncedOnly
Benchmark
--- FAIL: BenchmarkBroken
BenchmarkOdd   100   123 ns/op   extra
`
	rep, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("parsed %d results from non-result lines, want 0", len(rep.Results))
	}
}

func TestSplitProcs(t *testing.T) {
	cases := []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkFoo-8", "BenchmarkFoo", 8},
		{"BenchmarkFoo", "BenchmarkFoo", 0},
		{"BenchmarkFoo/sub-case-16", "BenchmarkFoo/sub-case", 16},
		{"BenchmarkFoo/b-2-x", "BenchmarkFoo/b-2-x", 0},
	}
	for _, c := range cases {
		name, procs := splitProcs(c.in)
		if name != c.name || procs != c.procs {
			t.Errorf("splitProcs(%q) = %q,%d; want %q,%d", c.in, name, procs, c.name, c.procs)
		}
	}
}

func TestRunWritesJSONFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "BENCH_encode.json")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", in, "-out", out}, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(rep.Results) != 4 {
		t.Errorf("round-tripped %d results, want 4", len(rep.Results))
	}
}

func TestRunFailsOnEmptyInput(t *testing.T) {
	err := run(nil, strings.NewReader("PASS\nok  cbde  0.1s\n"))
	if err == nil {
		t.Fatal("run succeeded on input with no benchmark results")
	}
}

func TestRunMergesMultipleInputs(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.txt")
	b := filepath.Join(dir, "b.txt")
	out := filepath.Join(dir, "BENCH_all.json")
	if err := os.WriteFile(a, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	second := "goos: plan9\nBenchmarkTracing/off-8   500   2000 ns/op\nBenchmarkTracing/on-8   400   2500 ns/op\n"
	if err := os.WriteFile(b, []byte(second), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", a, "-in", b, "-out", out}, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 6 {
		t.Errorf("merged %d results, want 4 + 2", len(rep.Results))
	}
	// Header fields are first-come: sampleBench's goos wins over plan9.
	if rep.Goos == "plan9" {
		t.Errorf("goos = %q, later input overwrote the first header", rep.Goos)
	}
	if rep.Results[4].Name != "BenchmarkTracing/off" {
		t.Errorf("result order not preserved across inputs: %+v", rep.Results[4])
	}

	// A results-free input fails the merge loudly.
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", a, "-in", empty}, nil); err == nil {
		t.Error("merge accepted an input with no benchmark results")
	}
}
