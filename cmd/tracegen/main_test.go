package main

import (
	"os"
	"path/filepath"
	"testing"

	"cbde/internal/trace"
)

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-site", "0"}); err == nil {
		t.Error("expected error for out-of-range site")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("expected flag parse error")
	}
}

func TestWritesParseableLog(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.log")
	if err := run([]string{"-site", "2", "-scale", "0.02", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reqs, err := trace.ReadLog(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 29 { // 1476 * 0.02
		t.Errorf("got %d requests, want 29", len(reqs))
	}
}
