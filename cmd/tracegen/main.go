// Command tracegen writes synthetic access-logs in Common Log Format: the
// stand-in for the three commercial site traces of Table II.
//
// Usage:
//
//	tracegen -site 1 -scale 0.1 -out site1.log
//	tracegen -site 2              # full-size site2 trace to stdout
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cbde/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatalf("tracegen: %v", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		siteIdx = fs.Int("site", 1, "calibrated site to generate (1, 2 or 3)")
		scale   = fs.Float64("scale", 1, "request-count scale in (0,1]")
		out     = fs.String("out", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *siteIdx < 1 || *siteIdx > 3 {
		return fmt.Errorf("-site must be 1, 2 or 3 (got %d)", *siteIdx)
	}

	sw := trace.PaperSites(*scale)[*siteIdx-1]
	reqs := trace.Generate(sw.Site, sw.Load)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteLog(w, reqs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d requests for %s (%s)\n",
		len(reqs), sw.Label, sw.Site.Host())
	return nil
}
