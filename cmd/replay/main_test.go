package main

import "testing"

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-site", "9"}); err == nil {
		t.Error("expected error for out-of-range site")
	}
	if err := run([]string{"-mode", "bogus"}); err == nil {
		t.Error("expected error for unknown mode")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("expected flag parse error")
	}
}

func TestTinyReplay(t *testing.T) {
	if err := run([]string{"-site", "2", "-scale", "0.01", "-mode", "classless"}); err != nil {
		t.Fatal(err)
	}
}
