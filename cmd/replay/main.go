// Command replay runs a calibrated site workload through the engine and
// prints the Table II-style accounting for one mode — the core measurement
// loop of the paper's evaluation.
//
// Usage:
//
//	replay -site 1 -scale 0.1 -mode class-based
//	replay -site 1 -scale 0.1 -mode classless-per-user   # the storage blow-up
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cbde/internal/core"
	"cbde/internal/experiments"
	"cbde/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatalf("replay: %v", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	var (
		siteIdx = fs.Int("site", 1, "calibrated site to replay (1, 2 or 3)")
		scale   = fs.Float64("scale", 0.1, "request-count scale in (0,1]")
		mode    = fs.String("mode", "class-based", "class-based | classless | classless-per-user")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *siteIdx < 1 || *siteIdx > 3 {
		return fmt.Errorf("-site must be 1, 2 or 3 (got %d)", *siteIdx)
	}
	m := core.ModeClassBased
	switch *mode {
	case "class-based":
	case "classless":
		m = core.ModeClassless
	case "classless-per-user":
		m = core.ModeClasslessPerUser
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}

	sw := trace.PaperSites(*scale)[*siteIdx-1]
	res, err := experiments.Replay(sw, m)
	if err != nil {
		return err
	}

	fmt.Printf("site            %s (%s), mode %s\n", res.Label, sw.Site.Host(), res.Mode)
	fmt.Printf("requests        %d\n", res.Requests)
	fmt.Printf("direct KB       %.0f\n", float64(res.DirectBytes)/1024)
	fmt.Printf("delta KB        %.0f (deltas %.0f + fulls %.0f)\n",
		float64(res.DeltaBytes+res.FullBytes)/1024,
		float64(res.DeltaBytes)/1024, float64(res.FullBytes)/1024)
	fmt.Printf("savings         %.1f%% (%.1f%% charging base distribution)\n",
		res.Savings()*100, res.SavingsWithBases()*100)
	fmt.Printf("responses       %d deltas, %d fulls\n", res.DeltaResponses, res.FullResponses)
	fmt.Printf("base-files      %.0f KB to clients, %.0f KB from server (proxy-cached)\n",
		float64(res.BaseBytesClients)/1024, float64(res.BaseBytesServer)/1024)
	fmt.Printf("classes         %d for %d distinct documents\n", res.Classes, res.DistinctDocs)
	fmt.Printf("server storage  %.0f KB\n", float64(res.StorageBytes)/1024)
	fmt.Printf("rebases         %d group, %d basic\n", res.GroupRebases, res.BasicRebases)
	if res.ProbesPerURL > 0 {
		fmt.Printf("grouping        %.2f probes per URL\n", res.ProbesPerURL)
	}
	return nil
}
