package main

import (
	"testing"

	"cbde/internal/origin"
)

func TestParseStyle(t *testing.T) {
	tests := map[string]origin.URLStyle{
		"path":     origin.StylePathHint,
		"query":    origin.StyleQueryHint,
		"segments": origin.StylePathSegments,
	}
	for in, want := range tests {
		got, err := parseStyle(in)
		if err != nil || got != want {
			t.Errorf("parseStyle(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseStyle("bogus"); err == nil {
		t.Error("expected error for unknown style")
	}
}

func TestParseDepts(t *testing.T) {
	got, err := parseDepts("laptops:50, desktops:25")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "laptops" || got[0].Items != 50 || got[1].Items != 25 {
		t.Errorf("parseDepts = %+v", got)
	}
	for _, bad := range []string{"", "noitems", "x:", "x:abc", "x:-3", ":5"} {
		if _, err := parseDepts(bad); err == nil {
			t.Errorf("parseDepts(%q): expected error", bad)
		}
	}
}

func TestExampleURL(t *testing.T) {
	tests := map[origin.URLStyle]string{
		origin.StylePathHint:     "laptops?id=0",
		origin.StyleQueryHint:    "?dept=laptops&id=0",
		origin.StylePathSegments: "laptops/0",
	}
	for style, want := range tests {
		if got := exampleURL(style, "laptops"); got != want {
			t.Errorf("exampleURL(%v) = %q, want %q", style, got, want)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-style", "bogus"}); err == nil {
		t.Error("expected error for bad style")
	}
	if err := run([]string{"-depts", "broken"}); err == nil {
		t.Error("expected error for bad depts")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("expected flag parse error")
	}
}
