// Command origind serves a synthetic dynamic web-site: the workload
// generator standing in for the paper's commercial origin servers.
//
// Usage:
//
//	origind -addr :8081 -host www.site1.com -style path -depts laptops:50,desktops:50 \
//	        -personalized -tick-every 10s
//
// Documents change every tick (temporal churn) and carry per-user private
// blocks when -personalized is set.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"cbde/internal/origin"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatalf("origind: %v", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("origind", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8081", "listen address")
		host          = fs.String("host", "www.site1.com", "site host (server-part)")
		style         = fs.String("style", "path", "URL style: path | query | segments")
		depts         = fs.String("depts", "laptops:50,desktops:50", "departments as name:items,...")
		templateBytes = fs.Int("template-bytes", 36000, "shared per-department template size")
		itemBytes     = fs.Int("item-bytes", 4000, "per-item content size")
		churnBytes    = fs.Int("churn-bytes", 1500, "per-tick changing content size")
		personalized  = fs.Bool("personalized", false, "add per-user private blocks")
		workFactor    = fs.Duration("work-factor", 0, "simulated per-request application work")
		tickEvery     = fs.Duration("tick-every", 0, "advance content every interval (0 = never)")
		seed          = fs.Uint64("seed", 1, "content seed")
		pprofAddr     = fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	st, err := parseStyle(*style)
	if err != nil {
		return err
	}
	ds, err := parseDepts(*depts)
	if err != nil {
		return err
	}

	site := origin.NewSite(origin.Config{
		Host:          *host,
		Style:         st,
		Depts:         ds,
		TemplateBytes: *templateBytes,
		ItemBytes:     *itemBytes,
		ChurnBytes:    *churnBytes,
		Personalized:  *personalized,
		WorkFactor:    *workFactor,
		Seed:          *seed,
	})

	if *tickEvery > 0 {
		go func() {
			for range time.Tick(*tickEvery) {
				site.Advance(1)
			}
		}()
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("origind: pprof on %s", *pprofAddr)
			log.Printf("origind: pprof server: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	log.Printf("origind: serving %s (%s) on %s; example URL: http://localhost%s/%s",
		*host, st, *addr, *addr, exampleURL(st, ds[0].Name))
	return http.ListenAndServe(*addr, site.Handler())
}

func parseStyle(s string) (origin.URLStyle, error) {
	switch s {
	case "path":
		return origin.StylePathHint, nil
	case "query":
		return origin.StyleQueryHint, nil
	case "segments":
		return origin.StylePathSegments, nil
	default:
		return 0, fmt.Errorf("unknown -style %q (want path, query or segments)", s)
	}
}

func parseDepts(s string) ([]origin.Dept, error) {
	var out []origin.Dept
	for _, part := range strings.Split(s, ",") {
		name, items, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad department %q (want name:items)", part)
		}
		n, err := strconv.Atoi(items)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad item count in %q", part)
		}
		out = append(out, origin.Dept{Name: name, Items: n})
	}
	if len(out) == 0 {
		return nil, errors.New("no departments given")
	}
	return out, nil
}

func exampleURL(st origin.URLStyle, dept string) string {
	switch st {
	case origin.StylePathHint:
		return dept + "?id=0"
	case origin.StyleQueryHint:
		return "?dept=" + dept + "&id=0"
	default:
		return dept + "/0"
	}
}
