package main

import "testing"

func TestUnknownTable(t *testing.T) {
	if err := run([]string{"-table", "nope"}); err == nil {
		t.Error("expected error for unknown table")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("expected flag parse error")
	}
}

func TestCheapTables(t *testing.T) {
	for _, table := range []string{"latency", "perror", "privacy"} {
		if err := run([]string{"-table", table, "-trials", "200"}); err != nil {
			t.Errorf("table %s: %v", table, err)
		}
	}
}
