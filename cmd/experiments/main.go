// Command experiments regenerates the paper's tables and figures
// (Section VI) and prints them in the paper's layout. EXPERIMENTS.md is
// produced from this tool's output.
//
// Usage:
//
//	experiments -table all -scale 0.1
//	experiments -table 2   -scale 1      # full Table II (slow)
//	experiments -table capacity
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cbde/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatalf("experiments: %v", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		table = fs.String("table", "all",
			"which experiment: 2 | 3 | 4 | latency | user-latency | grouping | capacity | perror | privacy | storage | baselines | chunk | probes | selector | eviction | rebase | formats | all")
		scale  = fs.Float64("scale", 0.1, "trace scale in (0,1] for replay-based experiments")
		trials = fs.Int("trials", 2000, "Monte-Carlo trials for the Section IV analysis")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	runners := map[string]func() error{
		"2": func() error {
			rows, err := experiments.TableII(*scale)
			if err != nil {
				return err
			}
			fmt.Printf("== Table II: bandwidth savings (scale %.2f) ==\n%s\n", *scale, experiments.FormatTableII(rows))
			return nil
		},
		"3": func() error {
			rows := experiments.TableIII(experiments.TableIIIDocs(120), 5, 42)
			fmt.Printf("== Table III: average delta sizes (bytes) by base-file algorithm ==\n%s\n",
				experiments.FormatTableIII(rows))
			return nil
		},
		"4": func() error {
			rows, err := experiments.TableIV(experiments.TableIVLevels)
			if err != nil {
				return err
			}
			fmt.Printf("== Table IV: anonymization levels ==\n%s\n", experiments.FormatTableIV(rows))
			return nil
		},
		"latency": func() error {
			fmt.Printf("== Section VI-A: latency ratios (30KB doc vs 1KB delta) ==\n%s\n",
				experiments.FormatLatency(experiments.LatencyReports(0, 0)))
			return nil
		},
		"grouping": func() error {
			rows, err := experiments.Grouping(*scale)
			if err != nil {
				return err
			}
			fmt.Printf("== Section VI-B: grouping statistics (scale %.2f) ==\n%s\n",
				*scale, experiments.FormatGrouping(rows))
			return nil
		},
		"capacity": func() error {
			res, err := experiments.Capacity(400)
			if err != nil {
				return err
			}
			fmt.Printf("== Section VI-C: server capacity ==\n%s\n", experiments.FormatCapacity(res))
			return nil
		},
		"perror": func() error {
			fmt.Printf("== Section IV: base-file selection error probability ==\n%s\n",
				experiments.FormatPError(experiments.PErrorTable(*trials)))
			return nil
		},
		"privacy": func() error {
			fmt.Printf("== Section V: anonymization privacy bounds ==\n%s\n",
				experiments.FormatPrivacy(experiments.PrivacyTable()))
			return nil
		},
		"storage": func() error {
			rows, err := experiments.StorageComparison(*scale)
			if err != nil {
				return err
			}
			fmt.Printf("== Ablation: server-side storage by mode (site1, scale %.2f) ==\n%s\n",
				*scale, experiments.FormatStorage(rows))
			return nil
		},
		"baselines": func() error {
			rows, err := experiments.Baselines(60)
			if err != nil {
				return err
			}
			fmt.Printf("== Related work: transfer sizes by scheme (Section I) ==\n%s\n",
				experiments.FormatBaselines(rows))
			return nil
		},
		"chunk": func() error {
			rows, err := experiments.AblateChunkSize(nil)
			if err != nil {
				return err
			}
			fmt.Printf("== Ablation: Vdelta chunk size (footnote 2) ==\n%s\n",
				experiments.FormatChunkSize(rows))
			return nil
		},
		"probes": func() error {
			rows, err := experiments.AblateProbeBudget(nil)
			if err != nil {
				return err
			}
			fmt.Printf("== Ablation: grouping probe budget and hints (Section III) ==\n%s\n",
				experiments.FormatProbeBudget(rows))
			return nil
		},
		"selector": func() error {
			fmt.Printf("== Ablation: base-file selection (p, K) sweep (Section IV) ==\n%s\n",
				experiments.FormatSelectorSweep(experiments.AblateSelector(nil, nil)))
			return nil
		},
		"eviction": func() error {
			fmt.Printf("== Ablation: eviction policies (footnote 3) ==\n%s\n",
				experiments.FormatEviction(experiments.AblateEviction()))
			return nil
		},
		"rebase": func() error {
			rows, err := experiments.AblateRebaseTimeout(nil, *scale)
			if err != nil {
				return err
			}
			fmt.Printf("== Ablation: group-rebase timeout (site1, scale %.2f) ==\n%s\n",
				*scale, experiments.FormatRebase(rows))
			return nil
		},
		"formats": func() error {
			rows, err := experiments.CompareFormats()
			if err != nil {
				return err
			}
			fmt.Printf("== Wire formats: vdelta vs RFC 3284 VCDIFF ==\n%s\n",
				experiments.FormatFormats(rows))
			return nil
		},
		"user-latency": func() error {
			reports, err := experiments.UserLatency(1, *scale)
			if err != nil {
				return err
			}
			fmt.Printf("== Abstract claim: per-user latency speedup (site1, scale %.2f) ==\n%s\n",
				*scale, experiments.FormatUserLatency(reports))
			return nil
		},
	}

	if *table != "all" {
		r, ok := runners[*table]
		if !ok {
			return fmt.Errorf("unknown -table %q", *table)
		}
		return r()
	}
	for _, name := range []string{
		"2", "3", "4", "latency", "user-latency", "grouping", "capacity",
		"perror", "privacy", "storage", "baselines", "chunk", "probes",
		"selector", "eviction", "rebase", "formats",
	} {
		if err := runners[name](); err != nil {
			return fmt.Errorf("table %s: %w", name, err)
		}
	}
	return nil
}
