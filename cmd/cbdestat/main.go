// Command cbdestat snapshots a running delta-server's observability
// endpoints: the global counter dump, the per-class stats table, and the
// Prometheus exposition.
//
// Usage:
//
//	cbdestat -server http://localhost:8080            # global + store + per-class table
//	cbdestat -server http://localhost:8080 -class ID  # one class as JSON
//	cbdestat -server http://localhost:8080 -store     # raw storage-governance JSON
//	cbdestat -server http://localhost:8080 -metrics   # raw exposition dump
//	cbdestat -server http://localhost:8080 -check     # validate exposition (CI)
//	cbdestat -trace -peers url1,url2,...              # join flight-recorder traces across a tier
//
// -check fetches /_cbde/metrics, parses it as Prometheus text format, and
// exits non-zero if it does not parse or lacks the core CBDE series; CI's
// smoke job runs it against a freshly loaded stack.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"text/tabwriter"
	"time"

	"cbde/internal/cluster"
	"cbde/internal/core"
	"cbde/internal/deltahttp"
	"cbde/internal/metrics"
	"cbde/internal/store"
)

// coreSeries are the series -check requires; they cover the acceptance
// criteria (per-class delta hits, bytes saved, per-stage latency) plus the
// legacy global counters.
var coreSeries = []string{
	"cbde_class_requests_total",
	"cbde_class_delta_hits_total",
	"cbde_class_bytes_in_total",
	"cbde_class_bytes_shipped_total",
	"cbde_bytes_saved_total",
	"cbde_classes",
	"cbde_delta_cache_hits_total",
	"cbde_delta_cache_misses_total",
	"cbde_delta_cache_coalesced_total",
	"cbde_graph_direct_total",
	"cbde_graph_composed_total",
	"cbde_graph_fallback_full_total",
	"cbde_graph_chain_length_bucket",
	"cbde_stage_duration_seconds_bucket",
	"cbde_stage_duration_seconds_sum",
	"cbde_stage_duration_seconds_count",
	"cbde_process_duration_seconds_bucket",
	"cbde_process_duration_seconds_quantile",
	"cbde_build_info",
	"requests",
	"bytes_direct",
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatalf("cbdestat: %v", err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cbdestat", flag.ContinueOnError)
	var (
		server    = fs.String("server", "http://localhost:8080", "delta-server base URL")
		class     = fs.String("class", "", "dump one class's stats as JSON (or filter -trace output)")
		rawStore  = fs.Bool("store", false, "dump the raw storage-governance snapshot as JSON")
		rawMet    = fs.Bool("metrics", false, "dump the raw Prometheus exposition")
		check     = fs.Bool("check", false, "validate the exposition and core series; exit non-zero on failure")
		traceMode = fs.Bool("trace", false, "fetch /_cbde/trace from every -peers node (or -server), join traces by ID, and print per-hop breakdowns")
		peers     = fs.String("peers", "", "trace mode: comma-separated node URLs or id=url pairs to join across (default: -server alone)")
		minMS     = fs.Float64("min-ms", 0, "trace mode: only traces at least this slow (server-side total, any hop)")
		outcome   = fs.String("outcome", "", "trace mode: only records with this outcome (delta|full|forwarded|...)")
		limit     = fs.Int("limit", 20, "trace mode: print at most this many traces, newest first (0 = all)")
		timeout   = fs.Duration("timeout", 10*time.Second, "HTTP timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: *timeout}

	switch {
	case *traceMode:
		return traceJoin(client, *server, *peers, traceFilter{
			class: *class, minMS: *minMS, outcome: *outcome, limit: *limit,
		}, out)
	case *check:
		return checkMetrics(client, *server, out)
	case *rawMet:
		body, err := fetch(client, *server+deltahttp.MetricsPath)
		if err != nil {
			return err
		}
		_, err = out.Write(body)
		return err
	case *rawStore:
		body, err := fetch(client, *server+deltahttp.StorePath)
		if err != nil {
			return err
		}
		_, err = out.Write(body)
		return err
	case *class != "":
		body, err := fetch(client, *server+deltahttp.StatsPath+"?class="+url.QueryEscape(*class))
		if err != nil {
			return err
		}
		_, err = out.Write(body)
		return err
	default:
		return snapshot(client, *server, out)
	}
}

func fetch(client *http.Client, u string) ([]byte, error) {
	resp, err := client.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", u, resp.Status, body)
	}
	return body, nil
}

// snapshot prints the global counter dump, the storage-governance summary,
// and a per-class table.
func snapshot(client *http.Client, server string, out io.Writer) error {
	global, err := fetch(client, server+deltahttp.StatsPath)
	if err != nil {
		return err
	}
	out.Write(global)

	if body, err := fetch(client, server+deltahttp.StorePath); err == nil {
		var st struct {
			store.Stats
			DeltaCache core.DeltaCacheStats `json:"deltaCache"`
			Graph      core.GraphStats      `json:"graph"`
			Disk       store.TierStats      `json:"disk"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return fmt.Errorf("parse store snapshot: %w", err)
		}
		budget := "unbudgeted"
		if st.Budget > 0 {
			budget = fmt.Sprintf("%d budget", st.Budget)
		}
		fmt.Fprintf(out, "\nstore: %d resident bytes (%s; base %d, cand %d, index %d, delta %d, edge %d), %d/%d classes resident, %d prunes, %d evictions\n",
			st.Resident.Total, budget,
			st.Resident.BaseBytes, st.Resident.CandBytes, st.Resident.IndexBytes, st.Resident.DeltaBytes, st.Resident.EdgeBytes,
			st.ResidentClasses, st.Classes, st.Prunes, st.Evictions)
		if dc := st.DeltaCache; dc.Enabled {
			fmt.Fprintf(out, "delta-cache: %d hits, %d misses, %d coalesced, %d entries (%d bytes), %d invalidations\n",
				dc.Hits, dc.Misses, dc.Coalesced, dc.Entries, dc.Bytes, dc.Invalidations)
		}
		if g := st.Graph; g.Depth > 1 || g.Edges > 0 || g.Direct+g.Composed+g.FallbackFull > 0 {
			fmt.Fprintf(out, "graph: depth %d, %d edges (%d bytes); served %d direct, %d composed, %d fallback-full\n",
				g.Depth, g.Edges, g.EdgeBytes, g.Direct, g.Composed, g.FallbackFull)
		}
		if d := st.Disk; d.Enabled {
			diskBudget := "unbounded"
			if d.BudgetBytes > 0 {
				diskBudget = fmt.Sprintf("%d budget", d.BudgetBytes)
			}
			fmt.Fprintf(out, "disk: %d bytes in %d segments (%s; %d live), %d spilled classes, %d spills, %d fault-ins, %d drops, %d errors\n",
				d.DiskBytes, d.Segments, diskBudget, d.LiveBytes,
				d.SpilledClasses, d.Spills, d.FaultIns, d.Drops, d.Errors)
		}
		for i := max(0, len(st.Log)-3); i < len(st.Log); i++ {
			r := st.Log[i]
			fmt.Fprintf(out, "  %s %s freed %d bytes at %s\n",
				r.Kind, r.Key, r.FreedBytes, r.At.Format(time.RFC3339))
		}
	}

	// Cluster section — only when the server is part of a tier (standalone
	// servers 404 the endpoint, which is the feature-detect).
	if body, err := fetch(client, server+deltahttp.ClusterPath); err == nil {
		var cs cluster.Status
		if err := json.Unmarshal(body, &cs); err != nil {
			return fmt.Errorf("parse cluster snapshot: %w", err)
		}
		mode := "forward"
		if cs.Redirect {
			mode = "redirect"
		}
		fmt.Fprintf(out, "\ncluster: node %s of %d (%s mode), owns %.0f%% of classes\n",
			cs.Self, len(cs.Peers), mode, 100*cs.OwnedShare)
		fmt.Fprintf(out, "cluster: %d owned, %d forwarded, %d redirected, %d hop-guard, %d forward errors, %d remote bases\n",
			cs.OwnedRequests, cs.Forwarded, cs.Redirected, cs.HopGuard, cs.ForwardErrors, cs.RemoteBase)
		for _, p := range cs.Peers {
			state := "alive"
			if !p.Alive {
				state = fmt.Sprintf("DEAD (%d fails: %s)", p.Fails, p.LastError)
			}
			self := " "
			if p.Self {
				self = "*"
			}
			fmt.Fprintf(out, "  %s %s %s %s\n", self, p.ID, p.URL, state)
		}
	}

	body, err := fetch(client, server+deltahttp.StatsPath+"?class=*")
	if err != nil {
		return err
	}
	var rows []core.ClassStats
	if err := json.Unmarshal(body, &rows); err != nil {
		return fmt.Errorf("parse per-class stats: %w", err)
	}
	if len(rows) == 0 {
		fmt.Fprintln(out, "\nno classes yet")
		return nil
	}
	tw := tabwriter.NewWriter(out, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "\nCLASS\tREQS\tHITS\tMISSES\tBYTES-IN\tSHIPPED\tSAVED%\tBASE\tAGE\tANON\tRESIDENT\tEV/RW/FI\tGRAPH\tD/C/F")
	for _, r := range rows {
		// Completed anonymization processes are discarded by the engine,
		// so inactive classes show "-" rather than guessing done vs off.
		anon := "-"
		if r.AnonActive {
			anon = fmt.Sprintf("%d/%d", r.AnonDone, r.AnonNeeded)
		}
		base := fmt.Sprintf("v%d", r.BaseVersion)
		if r.Evicted {
			// A spilled class is evicted from RAM but one fault-in away
			// from serving deltas again; a plainly evicted one must
			// re-warm from traffic.
			if r.Spilled {
				base = "spilled"
			} else {
				base = "evicted"
			}
		}
		// GRAPH is "<versions>v/<edges>e"; D/C/F splits delta serving into
		// direct, composed-chain, and aged-out full-fallback responses.
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.1f\t%s\t%s\t%s\t%d\t%d/%d/%d\t%dv/%de\t%d/%d/%d\n",
			r.ID, r.Requests, r.DeltaHits, r.DeltaMisses,
			r.BytesIn, r.BytesShipped, 100*r.Savings(),
			base, r.BaseAge.Round(time.Second), anon,
			r.ResidentBytes, r.Evictions, r.Rewarms, r.FaultIns,
			r.GraphVersions, r.GraphEdges,
			r.GraphDirect, r.GraphComposed, r.GraphFallback)
	}
	return tw.Flush()
}

// checkMetrics validates the exposition endpoint for CI.
func checkMetrics(client *http.Client, server string, out io.Writer) error {
	resp, err := client.Get(server + deltahttp.MetricsPath)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", deltahttp.MetricsPath, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ExpositionContentType {
		return fmt.Errorf("Content-Type = %q, want %q", ct, metrics.ExpositionContentType)
	}
	exp, err := metrics.ParseExposition(resp.Body)
	if err != nil {
		return fmt.Errorf("exposition does not parse: %w", err)
	}
	var missing []string
	for _, s := range coreSeries {
		if !exp.Series(s) {
			missing = append(missing, s)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("exposition missing core series: %v", missing)
	}
	fmt.Fprintf(out, "ok: %d samples, %d typed families, all %d core series present\n",
		len(exp.Samples), len(exp.Types), len(coreSeries))
	return nil
}
