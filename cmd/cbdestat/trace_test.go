package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cbde/internal/anonymize"
	"cbde/internal/basefile"
	"cbde/internal/cluster"
	"cbde/internal/core"
	"cbde/internal/deltahttp"
	"cbde/internal/deltaserver"
	"cbde/internal/flightrec"
	"cbde/internal/origin"
)

// tierStack boots a 2-node delta-server tier with flight recorders and
// returns the node front URLs plus the index of the node that does NOT own
// the test path's class (so hitting it forwards).
func tierStack(t *testing.T) (urls [2]string, entry int) {
	t.Helper()
	site := origin.NewSite(origin.Config{
		Host:          "www.stat.com",
		Style:         origin.StylePathSegments,
		Depts:         []origin.Dept{{Name: "d", Items: 8}},
		TemplateBytes: 20000,
		ItemBytes:     2000,
		Seed:          9,
	})
	originSrv := httptest.NewServer(site.Handler())
	t.Cleanup(originSrv.Close)

	var servers [2]*deltaserver.Server
	var fronts [2]*httptest.Server
	for i := range fronts {
		i := i
		fronts[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			servers[i].ServeHTTP(w, r)
		}))
		t.Cleanup(fronts[i].Close)
		urls[i] = fronts[i].URL
	}
	peers := []cluster.Node{
		{ID: "n0", URL: urls[0]},
		{ID: "n1", URL: urls[1]},
	}
	clusters := make([]*cluster.Cluster, 2)
	for i := range servers {
		cl, err := cluster.New(cluster.Config{Self: peers[i].ID, Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		clusters[i] = cl
		eng, err := core.NewEngine(core.Config{
			Anon: anonymize.Config{M: 1, N: 2},
			Selector: basefile.Config{
				VersionStride: cl.Size(),
				VersionOffset: cl.SelfIndex(),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		eng.SetTracing(true)
		srv, err := deltaserver.New(originSrv.URL, eng,
			deltaserver.WithPublicHost("www.stat.com"),
			deltaserver.WithCluster(cl),
			deltaserver.WithNodeID(peers[i].ID),
			deltaserver.WithFlightRecorder(flightrec.New(peers[i].ID, 64, 0)))
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
	}

	key := servers[0].Engine().OwnerKey("www.stat.com" + tierPath)
	if clusters[0].Owner(key).ID == "n0" {
		return urls, 1
	}
	return urls, 0
}

// tierPath is the document the tier tests request; all items of the dept
// share one class, so the whole site has a single owner.
const tierPath = "/d/0"

// TestTraceJoinAcrossTier drives one request through a forward hop and
// checks `cbdestat -trace` joins both nodes' records into one trace.
func TestTraceJoinAcrossTier(t *testing.T) {
	urls, entry := tierStack(t)
	entryID := fmt.Sprintf("n%d", entry)
	ownerID := fmt.Sprintf("n%d", 1-entry)

	req, _ := http.NewRequest(http.MethodGet, urls[entry]+tierPath, nil)
	req.Header.Set(deltahttp.HeaderUser, "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	traceID := resp.Header.Get(deltahttp.HeaderTrace)
	traceID, _, _ = strings.Cut(traceID, ";")

	var buf bytes.Buffer
	if err := run([]string{"-trace", "-peers", "n0=" + urls[0] + ",n1=" + urls[1]}, &buf); err != nil {
		t.Fatalf("-trace: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "trace "+traceID+" nodes=2 [") ||
		!strings.Contains(out, "origin="+entryID) {
		t.Errorf("join summary missing or wrong (want trace %s origin %s):\n%s", traceID, entryID, out)
	}
	if !strings.Contains(out, "hop 0 "+entryID) || !strings.Contains(out, "hop 1 "+ownerID) {
		t.Errorf("per-hop lines missing:\n%s", out)
	}
	if !strings.Contains(out, "forwarded") {
		t.Errorf("entry hop outcome missing:\n%s", out)
	}
	if !strings.Contains(out, "stages:") {
		t.Errorf("sampled hop has no stage breakdown:\n%s", out)
	}
	if !strings.Contains(out, "1 traces across 2 nodes") {
		t.Errorf("trailer missing:\n%s", out)
	}

	// An unreachable peer is reported but does not hide live nodes.
	buf.Reset()
	if err := run([]string{"-trace", "-peers", urls[0] + ",http://127.0.0.1:1"}, &buf); err != nil {
		t.Fatalf("-trace with dead peer: %v", err)
	}
	out = buf.String()
	if !strings.Contains(out, "# node http://127.0.0.1:1 unreachable") {
		t.Errorf("dead peer not reported:\n%s", out)
	}
	if !strings.Contains(out, "across 1 nodes") {
		t.Errorf("live node's records lost:\n%s", out)
	}

	// Outcome filter narrows to the forwarded entry record.
	buf.Reset()
	if err := run([]string{"-trace", "-peers", urls[0] + "," + urls[1], "-outcome", "forwarded"}, &buf); err != nil {
		t.Fatalf("-trace -outcome: %v", err)
	}
	if out := buf.String(); !strings.Contains(out, "forwarded") || strings.Contains(out, "hop 1") {
		t.Errorf("outcome filter output wrong:\n%s", out)
	}

	// Without -peers, -trace reads the single -server ring.
	buf.Reset()
	if err := run([]string{"-trace", "-server", urls[1]}, &buf); err != nil {
		t.Fatalf("-trace single server: %v", err)
	}
	if out := buf.String(); !strings.Contains(out, "across 1 nodes") {
		t.Errorf("single-server trace output wrong:\n%s", out)
	}
}

// TestTraceModeNoRecorder: every node 404ing /_cbde/trace is an error, not
// an empty success.
func TestTraceModeNoRecorder(t *testing.T) {
	server := testStack(t) // no flight recorder attached
	var buf bytes.Buffer
	if err := run([]string{"-trace", "-server", server}, &buf); err == nil {
		t.Errorf("-trace against a recorder-less server succeeded:\n%s", buf.String())
	}
}
