// Trace mode: fetch the flight-recorder ring from every node of a tier,
// join records by trace ID, and print per-hop / per-stage latency
// breakdowns — the operator's view of one request's walk across nodes.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"cbde/internal/deltahttp"
)

// traceFilter carries the trace-mode flags.
type traceFilter struct {
	class   string
	minMS   float64
	outcome string
	limit   int
}

// traceRec mirrors one flightrec NDJSON record.
type traceRec struct {
	Seq           uint64      `json:"seq"`
	Trace         string      `json:"trace"`
	Origin        string      `json:"origin"`
	Hop           int         `json:"hop"`
	Node          string      `json:"node"`
	Class         string      `json:"class"`
	Outcome       string      `json:"outcome"`
	StartUnixNano int64       `json:"startUnixNano"`
	TotalUs       int64       `json:"totalUs"`
	DocBytes      int64       `json:"docBytes"`
	WireBytes     int64       `json:"wireBytes"`
	Sampled       bool        `json:"sampled"`
	Reasons       []string    `json:"reasons"`
	Spans         []traceSpan `json:"spans"`
}

type traceSpan struct {
	Stage string `json:"stage"`
	Us    int64  `json:"us"`
	Bytes int64  `json:"bytes"`
}

// traceJoin fetches every node's ring, groups records by trace ID, and
// prints the joined traces newest-first.
func traceJoin(client *http.Client, server, peers string, f traceFilter, out io.Writer) error {
	nodes, err := traceNodes(server, peers)
	if err != nil {
		return err
	}

	q := url.Values{}
	if f.class != "" {
		q.Set("class", f.class)
	}
	if f.minMS > 0 {
		q.Set("min-ms", fmt.Sprintf("%g", f.minMS))
	}
	if f.outcome != "" {
		q.Set("outcome", f.outcome)
	}
	query := ""
	if len(q) > 0 {
		query = "?" + q.Encode()
	}

	byTrace := make(map[string][]traceRec)
	var order []string // trace IDs by first (newest) appearance
	fetched := 0
	for _, n := range nodes {
		recs, err := fetchTrace(client, n+deltahttp.TracePath+query)
		if err != nil {
			// A dead node must not hide the live ones' records; say so and
			// keep joining.
			fmt.Fprintf(out, "# node %s unreachable: %v\n", n, err)
			continue
		}
		fetched++
		for _, r := range recs {
			if r.Trace == "" {
				continue
			}
			if _, seen := byTrace[r.Trace]; !seen {
				order = append(order, r.Trace)
			}
			byTrace[r.Trace] = append(byTrace[r.Trace], r)
		}
	}
	if fetched == 0 {
		return fmt.Errorf("no node served %s", deltahttp.TracePath)
	}

	// Newest first across nodes: order by the trace's earliest start time.
	sort.SliceStable(order, func(i, j int) bool {
		return traceStart(byTrace[order[i]]) > traceStart(byTrace[order[j]])
	})

	printed := 0
	for _, id := range order {
		if f.limit > 0 && printed >= f.limit {
			break
		}
		printTrace(out, id, byTrace[id])
		printed++
	}
	fmt.Fprintf(out, "%d traces across %d nodes\n", printed, fetched)
	return nil
}

// traceNodes resolves the node URL list: -peers entries (id=url or bare
// URL), or the single -server.
func traceNodes(server, peers string) ([]string, error) {
	if peers == "" {
		return []string{strings.TrimSuffix(server, "/")}, nil
	}
	var nodes []string
	for _, entry := range strings.Split(peers, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if _, u, found := strings.Cut(entry, "="); found {
			entry = u
		}
		nodes = append(nodes, strings.TrimSuffix(entry, "/"))
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("-peers %q contains no nodes", peers)
	}
	return nodes, nil
}

// fetchTrace reads one node's NDJSON ring.
func fetchTrace(client *http.Client, u string) ([]traceRec, error) {
	resp, err := client.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	var recs []traceRec
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r traceRec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("bad trace record %q: %w", line, err)
		}
		recs = append(recs, r)
	}
	return recs, sc.Err()
}

func traceStart(recs []traceRec) int64 {
	start := int64(0)
	for _, r := range recs {
		if start == 0 || r.StartUnixNano < start {
			start = r.StartUnixNano
		}
	}
	return start
}

// printTrace renders one joined trace: a grep-friendly summary line, then
// one indented line per hop in hop order, with stage spans on sampled hops.
func printTrace(out io.Writer, id string, recs []traceRec) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Hop < recs[j].Hop })
	nodes := make([]string, 0, len(recs))
	seen := make(map[string]bool)
	var total int64
	class, origin := "", ""
	for _, r := range recs {
		if !seen[r.Node] {
			seen[r.Node] = true
			nodes = append(nodes, r.Node)
		}
		if r.TotalUs > total {
			total = r.TotalUs // the slowest hop bounds the request
		}
		if r.Class != "" {
			class = r.Class
		}
		if r.Origin != "" {
			origin = r.Origin
		}
	}
	fmt.Fprintf(out, "trace %s nodes=%d [%s] origin=%s total=%s",
		id, len(nodes), strings.Join(nodes, ","), origin, time.Duration(total)*time.Microsecond)
	if class != "" {
		fmt.Fprintf(out, " class=%s", class)
	}
	fmt.Fprintln(out)
	for _, r := range recs {
		fmt.Fprintf(out, "  hop %d %-8s %-11s %8s doc=%dB wire=%dB",
			r.Hop, r.Node, r.Outcome, time.Duration(r.TotalUs)*time.Microsecond, r.DocBytes, r.WireBytes)
		if len(r.Reasons) > 0 {
			fmt.Fprintf(out, " [%s]", strings.Join(r.Reasons, ","))
		}
		fmt.Fprintln(out)
		if r.Sampled && len(r.Spans) > 0 {
			parts := make([]string, 0, len(r.Spans))
			for _, sp := range r.Spans {
				p := fmt.Sprintf("%s %s", sp.Stage, time.Duration(sp.Us)*time.Microsecond)
				if sp.Bytes != 0 {
					p += fmt.Sprintf("[%dB]", sp.Bytes)
				}
				parts = append(parts, p)
			}
			fmt.Fprintf(out, "       stages: %s\n", strings.Join(parts, " · "))
		}
	}
}
