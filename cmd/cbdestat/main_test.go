package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cbde/internal/anonymize"
	"cbde/internal/core"
	"cbde/internal/deltahttp"
	"cbde/internal/deltaserver"
	"cbde/internal/origin"
	"cbde/internal/store"
)

// testStack boots origin + delta-server and drives enough capable traffic
// that one class has a distributable base and delta hits.
func testStack(t *testing.T) string {
	t.Helper()
	site := origin.NewSite(origin.Config{
		Host:          "www.stat.com",
		Style:         origin.StylePathSegments,
		Depts:         []origin.Dept{{Name: "d", Items: 2}},
		TemplateBytes: 20000,
		ItemBytes:     2000,
		Seed:          9,
	})
	originSrv := httptest.NewServer(site.Handler())
	t.Cleanup(originSrv.Close)
	eng, err := core.NewEngine(core.Config{Anon: anonymize.Config{M: 1, N: 2}})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetTracing(true)
	srv, err := deltaserver.New(originSrv.URL, eng, deltaserver.WithPublicHost("www.stat.com"))
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(srv)
	t.Cleanup(front.Close)

	var classID, version string
	for u := 0; u < 5; u++ {
		req, _ := http.NewRequest("GET", front.URL+"/d/0", nil)
		req.Header.Set(deltahttp.HeaderCapable, "1")
		req.Header.Set(deltahttp.HeaderUser, fmt.Sprintf("u%d", u))
		if classID != "" {
			req.Header.Set(deltahttp.HeaderHaveClass, classID)
			req.Header.Set(deltahttp.HeaderHaveVersion, version)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if c := resp.Header.Get(deltahttp.HeaderClass); c != "" {
			classID = c
		}
		if v := resp.Header.Get(deltahttp.HeaderLatestVersion); v != "" {
			version = v
		}
	}
	if classID == "" {
		t.Fatal("no class after warmup")
	}
	return front.URL
}

func TestSnapshotAndCheck(t *testing.T) {
	server := testStack(t)

	var buf bytes.Buffer
	if err := run([]string{"-server", server}, &buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"CLASS", "HITS", "SAVED%", "RESIDENT", "www.stat.com/d", "store:", "unbudgeted"} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot output missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := run([]string{"-server", server, "-store"}, &buf); err != nil {
		t.Fatalf("-store: %v", err)
	}
	var st store.Stats
	if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
		t.Fatalf("-store output is not JSON: %v\n%s", err, buf.String())
	}
	if st.Classes == 0 || st.Resident.Total == 0 {
		t.Errorf("-store snapshot empty after warm traffic: %+v", st)
	}

	buf.Reset()
	if err := run([]string{"-server", server, "-check"}, &buf); err != nil {
		t.Fatalf("-check failed against a warm stack: %v", err)
	}
	if !strings.Contains(buf.String(), "ok:") {
		t.Errorf("-check output = %q, want ok summary", buf.String())
	}

	buf.Reset()
	if err := run([]string{"-server", server, "-metrics"}, &buf); err != nil {
		t.Fatalf("-metrics: %v", err)
	}
	if !strings.Contains(buf.String(), "# TYPE cbde_class_delta_hits_total counter") {
		t.Errorf("-metrics dump missing typed family:\n%s", buf.String())
	}
}

func TestClassFlag(t *testing.T) {
	server := testStack(t)
	var buf bytes.Buffer
	if err := run([]string{"-server", server}, &buf); err != nil {
		t.Fatal(err)
	}
	// Pull the class ID out of the stats table instead of hardcoding it.
	var rows []core.ClassStats
	body, err := fetch(&http.Client{Timeout: 5 * time.Second}, server+deltahttp.StatsPath+"?class=*")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, &rows); err != nil || len(rows) == 0 {
		t.Fatalf("stats rows: %v (%d rows)", err, len(rows))
	}

	buf.Reset()
	if err := run([]string{"-server", server, "-class", rows[0].ID}, &buf); err != nil {
		t.Fatalf("-class: %v", err)
	}
	var row core.ClassStats
	if err := json.Unmarshal(buf.Bytes(), &row); err != nil {
		t.Fatalf("-class output is not JSON: %v\n%s", err, buf.String())
	}
	if row.ID != rows[0].ID || row.Requests == 0 {
		t.Errorf("-class row = %+v, want populated stats for %q", row, rows[0].ID)
	}

	if err := run([]string{"-server", server, "-class", "nope"}, &buf); err == nil {
		t.Error("-class with unknown ID succeeded, want error")
	}
}

func TestCheckFailsOnGarbage(t *testing.T) {
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprintln(w, "this is not { prometheus")
	}))
	t.Cleanup(garbage.Close)
	if err := run([]string{"-server", garbage.URL, "-check"}, &bytes.Buffer{}); err == nil {
		t.Error("-check accepted garbage exposition")
	}
}
