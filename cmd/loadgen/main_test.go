package main

import "testing"

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("expected flag parse error")
	}
	if err := run([]string{"-paths", " , "}); err == nil {
		t.Error("expected error for empty path list")
	}
}
