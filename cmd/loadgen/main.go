// Command loadgen drives a running delta-server (or a proxy-cache in front
// of one) with concurrent delta-capable clients and reports throughput,
// latency percentiles, and the transfer ledger.
//
// Usage:
//
//	loadgen -server http://localhost:8080 -paths /laptops/0,/laptops/1 \
//	        -clients 32 -requests 100
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cbde/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatalf("loadgen: %v", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		server   = fs.String("server", "http://localhost:8080", "delta-server base URL, or a comma-separated list to spray clients across a cluster")
		paths    = fs.String("paths", "/laptops/0", "comma-separated document paths")
		clients  = fs.Int("clients", 8, "concurrent delta-capable clients")
		requests = fs.Int("requests", 50, "requests per client")
		vcdiff   = fs.Bool("vcdiff", false, "request RFC 3284 VCDIFF payloads")
		verify   = fs.Bool("verify", false, "byte-compare every reconstruction against a plain re-fetch; exit non-zero on mismatch")
		repeat   = fs.Float64("repeat", 0, "fraction of requests repeating the previous path (0..1); exercises the delta memo cache")
		lag      = fs.Float64("lag", 0, "mean client staleness in versions (geometric); clients refresh base-files behind latest and exercise the server's version graph")
		diurnal  = fs.Int("diurnal", 0, "alternate each client between the two halves of -paths this many cycles per run; with a budgeted server the idle half evicts (and spills) while the other is hot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var pathList []string
	for _, p := range strings.Split(*paths, ",") {
		if p = strings.TrimSpace(p); p != "" {
			pathList = append(pathList, p)
		}
	}
	var serverList []string
	for _, s := range strings.Split(*server, ",") {
		if s = strings.TrimSpace(s); s != "" {
			serverList = append(serverList, strings.TrimSuffix(s, "/"))
		}
	}
	res, err := loadgen.Run(loadgen.Config{
		ServerURLs:        serverList,
		Paths:             pathList,
		Clients:           *clients,
		RequestsPerClient: *requests,
		VCDIFF:            *vcdiff,
		Verify:            *verify,
		RepeatRatio:       *repeat,
		LagMean:           *lag,
		DiurnalCycles:     *diurnal,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	if res.Mismatches > 0 {
		return fmt.Errorf("%d document mismatches", res.Mismatches)
	}
	return nil
}
